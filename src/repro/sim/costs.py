"""The paper's cost model (Table 1) and size/time conversions.

All strategy work is expressed in three primitive charges:

* disk access: ``T_d`` seconds per byte read at a site;
* network transfer: ``T_net`` seconds per byte on the shared channel;
* CPU: ``T_c`` seconds per comparison.

Sizes follow Table 1: attributes average ``S_a`` bytes, identifiers
``S_GOid`` / ``S_LOid`` bytes, object signatures ``S_s`` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

MICROSECOND = 1e-6


@dataclass(frozen=True)
class CostModel:
    """System parameters (Table 1), in bytes and seconds.

    Defaults reproduce the paper's setting exactly:
    S_a=32 B, S_GOid=S_LOid=16 B, S_s=32 B, T_d=15 us/B, T_net=8 us/B,
    T_c=0.5 us/comparison, N_iso=2.
    """

    attribute_bytes: int = 32        # S_a
    goid_bytes: int = 16             # S_GOid
    loid_bytes: int = 16             # S_LOid
    signature_bytes: int = 32        # S_s
    disk_s_per_byte: float = 15 * MICROSECOND    # T_d
    net_s_per_byte: float = 8 * MICROSECOND      # T_net
    cpu_s_per_comparison: float = 0.5 * MICROSECOND  # T_c
    avg_isomeric_objects: float = 2.0  # N_iso
    # Seek overhead of one *random* object fetch (an assistant retrieved
    # by LOid).  Extent scans and buffered walks are sequential and pay
    # only T_d; mid-1990s disks charged ~12 ms of seek + rotation per
    # random access.  Not in Table 1 — documented extension (DESIGN.md).
    disk_seek_s: float = 0.012

    # --- sizes ----------------------------------------------------------------

    def object_bytes(self, n_attributes: float, with_loid: bool = True) -> float:
        """Size of one object projected on *n_attributes* attributes.

        Accepts fractional attribute counts (the analytic model works in
        expectations).
        """
        size = n_attributes * self.attribute_bytes
        if with_loid:
            size += self.loid_bytes
        return size

    def row_bytes(self, n_attributes: int) -> int:
        """Size of one local result row (LOid + GOid + attribute values)."""
        return (
            self.loid_bytes + self.goid_bytes
            + n_attributes * self.attribute_bytes
        )

    def check_request_bytes(self, n_loids: int, n_predicates: int) -> int:
        """Size of an assistant-check request: LOid list + predicates.

        A predicate ships as an attribute name + operand, approximated as
        one attribute-sized unit each.
        """
        return (
            n_loids * self.loid_bytes
            + n_predicates * 2 * self.attribute_bytes
        )

    def check_reply_bytes(self, n_verdicts: int) -> int:
        """Size of a check reply: one LOid-sized verdict entry each."""
        return n_verdicts * self.loid_bytes

    # --- times ----------------------------------------------------------------

    def disk_time(self, n_bytes: float) -> float:
        return n_bytes * self.disk_s_per_byte

    def net_time(self, n_bytes: float) -> float:
        return n_bytes * self.net_s_per_byte

    def cpu_time(self, comparisons: float) -> float:
        return comparisons * self.cpu_s_per_comparison

    def random_fetch_time(self, n_fetches: float, n_bytes: float) -> float:
        """Disk time of *n_fetches* random object reads totalling *n_bytes*."""
        return n_fetches * self.disk_seek_s + self.disk_time(n_bytes)


#: The paper's exact Table 1 configuration.
PAPER_COSTS = CostModel()


def table1_rows(model: CostModel = PAPER_COSTS):
    """The rows of Table 1, for the benchmark harness to print."""
    return [
        ("S_a", "average size of attributes", f"{model.attribute_bytes} bytes"),
        ("S_GOid", "size of GOid", f"{model.goid_bytes} bytes"),
        ("S_LOid", "size of LOid", f"{model.loid_bytes} bytes"),
        ("S_s", "size of object signatures", f"{model.signature_bytes} bytes"),
        (
            "T_d",
            "average disk access time",
            f"{model.disk_s_per_byte / MICROSECOND:g} us/byte",
        ),
        (
            "T_net",
            "average network transfer time",
            f"{model.net_s_per_byte / MICROSECOND:g} us/byte",
        ),
        (
            "T_c",
            "average cpu processing time",
            f"{model.cpu_s_per_comparison / MICROSECOND:g} us/comparison",
        ),
        (
            "N_iso",
            "average number of isomeric objects for the same real world entity",
            f"{model.avg_isomeric_objects:g}",
        ),
    ]
