"""Activity graphs scheduled on the simulated federation.

A strategy's execution is described as a DAG of *nodes*:

* **activities** consume a site device (CPU or disk) for a duration;
* **transfers** consume the network channel for ``bytes * T_net``.

Nodes wait for their dependencies, queue FIFO on their resource, run, and
complete.  The graph is executed on the :mod:`repro.sim.kernel` event
loop, which yields the two quantities the paper reports:

* **total execution time** — the sum of all node durations (total work
  performed in the federation, regardless of overlap);
* **response time** — the simulated completion time of the whole graph
  (what the user waits; parallelism shortens it).

The network is a single shared channel by default, so simultaneous
transfers from several component databases queue — reproducing the
paper's observation that "the transfer time gets longer when more
component databases transfer data simultaneously".  Pass
``shared_network=False`` for the ablation with an uncontended network
(one channel per site pair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - annotation only, avoids a hard dep
    from repro.faults.plan import FaultPlan
from repro.sim.costs import CostModel, PAPER_COSTS
from repro.sim.kernel import Acquire, AllOf, Event, Release, Resource, Simulator, Timeout

#: Phase tags used for breakdowns (paper's phases plus bookkeeping).
PHASE_O = "O"  # looking up / checking assistant objects
PHASE_I = "I"  # integration / certification
PHASE_P = "P"  # predicate evaluation
PHASE_XFER = "transfer"
PHASE_SCAN = "scan"  # disk retrieval of extents
PHASE_FAULT = "fault"  # timeout/backoff waits on unreachable sites


@dataclass
class Node:
    """One scheduled unit of work in the activity graph."""

    index: int
    label: str
    resource_name: str
    seconds: float
    phase: str
    site: str
    nbytes: int = 0
    #: Destination site of a transfer ("" for site-local work) — lets the
    #: scheduler stall transfers whose endpoint is inside an outage window.
    dst: str = ""
    deps: Tuple["Node", ...] = ()
    start: Optional[float] = None
    finish: Optional[float] = None
    #: When dependencies completed and the node began queueing for its
    #: resource — ``start - ready`` is the FIFO queueing delay.
    ready: Optional[float] = None


class FederationSim:
    """Builds and runs one strategy's activity graph.

    Typical use::

        fed = FederationSim(["DB1", "DB2", "DB3"], global_site="GPS")
        scan = fed.disk("DB1", nbytes=..., label="scan Student", phase="scan")
        ship = fed.transfer("DB1", "GPS", nbytes=..., deps=[scan])
        join = fed.cpu("GPS", comparisons=..., deps=[ship], phase="I")
        outcome = fed.run()
    """

    def __init__(
        self,
        sites: Sequence[str],
        global_site: str = "GPS",
        cost_model: CostModel = PAPER_COSTS,
        shared_network: bool = True,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> None:
        self.cost_model = cost_model
        self.global_site = global_site
        self.sites: Tuple[str, ...] = tuple(dict.fromkeys(list(sites) + [global_site]))
        self.shared_network = shared_network
        # Kept None when no faults are injected so the fault-free path
        # schedules exactly as before (zero overhead when off).
        self.fault_plan = fault_plan if fault_plan and fault_plan.active else None
        self._nodes: List[Node] = []
        self._ran = False

    # --- graph construction -----------------------------------------------

    def _add(
        self,
        label: str,
        resource_name: str,
        seconds: float,
        phase: str,
        site: str,
        nbytes: int = 0,
        deps: Iterable[Node] = (),
        dst: str = "",
    ) -> Node:
        if self._ran:
            raise SimulationError("cannot add nodes after run()")
        if seconds < 0:
            raise SimulationError(f"node {label!r} has negative duration")
        node = Node(
            index=len(self._nodes),
            label=label,
            resource_name=resource_name,
            seconds=seconds,
            phase=phase,
            site=site,
            nbytes=nbytes,
            dst=dst,
            deps=tuple(deps),
        )
        self._nodes.append(node)
        return node

    def cpu(
        self,
        site: str,
        comparisons: float,
        label: str = "cpu",
        phase: str = PHASE_P,
        deps: Iterable[Node] = (),
    ) -> Node:
        """CPU work at *site*, charged at T_c per comparison."""
        self._check_site(site)
        return self._add(
            label,
            f"{site}:cpu",
            self.cost_model.cpu_time(comparisons),
            phase,
            site,
            deps=deps,
        )

    def disk(
        self,
        site: str,
        nbytes: float,
        label: str = "disk",
        phase: str = PHASE_SCAN,
        deps: Iterable[Node] = (),
        seeks: float = 0.0,
    ) -> Node:
        """Disk access at *site*: T_d per byte plus one seek per random
        fetch (*seeks* > 0 for by-LOid object retrievals)."""
        self._check_site(site)
        return self._add(
            label,
            f"{site}:disk",
            self.cost_model.disk_time(nbytes)
            + seeks * self.cost_model.disk_seek_s,
            phase,
            site,
            nbytes=int(nbytes),
            deps=deps,
        )

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        label: str = "transfer",
        deps: Iterable[Node] = (),
        phase: str = PHASE_XFER,
    ) -> Node:
        """Network transfer, charged at T_net per byte.

        On the shared channel all transfers serialize; otherwise each
        (src, dst) pair has its own channel.  Transfers that belong to a
        protocol phase (e.g. shipping assistant-check requests is phase-O
        work) may carry that phase tag; they still occupy the network,
        not a site device.
        """
        self._check_site(src)
        self._check_site(dst)
        resource = "net" if self.shared_network else f"net:{src}->{dst}"
        seconds = self.cost_model.net_time(nbytes)
        if self.fault_plan is not None:
            seconds *= self.fault_plan.latency_multiplier(src, dst)
        return self._add(
            f"{label} {src}->{dst}",
            resource,
            seconds,
            phase,
            src,
            nbytes=int(nbytes),
            deps=deps,
            dst=dst,
        )

    def delay(
        self,
        site: str,
        seconds: float,
        label: str = "wait",
        phase: str = PHASE_FAULT,
        deps: Iterable[Node] = (),
    ) -> Node:
        """Pure waiting at *site* (timeout/backoff): occupies simulated
        time but no device — the requester is blocked, not working."""
        self._check_site(site)
        return self._add(label, "", seconds, phase, site, deps=deps)

    def barrier(self, deps: Iterable[Node], label: str = "barrier") -> Node:
        """A zero-cost synchronization node at the global site."""
        return self._add(
            label, f"{self.global_site}:cpu", 0.0, PHASE_I, self.global_site,
            deps=deps,
        )

    def _check_site(self, site: str) -> None:
        if site not in self.sites:
            raise SimulationError(f"unknown site {site!r}")

    # --- execution ----------------------------------------------------------

    def run(self) -> "SimOutcome":
        """Schedule all nodes on the kernel and collect the outcome."""
        if self._ran:
            raise SimulationError("FederationSim.run() called twice")
        self._ran = True
        sim = Simulator()
        resources: Dict[str, Resource] = {}
        done_events: Dict[int, Event] = {}

        plan = self.fault_plan

        def get_resource(name: str) -> Resource:
            if name not in resources:
                resource = sim.resource(name)
                # Site devices ("DB1:cpu", "DB1:disk") inherit the
                # site's outage windows: work queued during a crash is
                # served when the site recovers.
                if plan is not None and ":" in name and not name.startswith("net"):
                    site = name.split(":", 1)[0]
                    for window in plan.windows(site):
                        resource.add_downtime(window.start, window.end)
                resources[name] = resource
            return resources[name]

        def node_body(node: Node):
            dep_events = tuple(done_events[d.index] for d in node.deps)
            if dep_events:
                yield AllOf(dep_events)
            node.ready = sim.now
            if not node.resource_name:
                # A pure delay (fault wait): holds no device.
                node.start = sim.now
                yield Timeout(node.seconds)
                node.finish = sim.now
                done_events[node.index].trigger()
                return
            if plan is not None and node.dst:
                # A transfer cannot progress while either endpoint is
                # inside an outage window — stall until both are up.
                while True:
                    up = max(
                        plan.next_up(node.site, sim.now),
                        plan.next_up(node.dst, sim.now),
                    )
                    if up <= sim.now:
                        break
                    yield Timeout(up - sim.now)
            resource = get_resource(node.resource_name)
            yield Acquire(resource)
            node.start = sim.now
            yield Timeout(node.seconds)
            node.finish = sim.now
            yield Release(resource)
            done_events[node.index].trigger()

        for node in self._nodes:
            done_events[node.index] = sim.event(f"done:{node.label}")
        for node in self._nodes:
            sim.process(node_body(node), name=node.label)

        response_time = sim.run()
        unfinished = [n.label for n in self._nodes if n.finish is None]
        if unfinished:
            raise SimulationError(
                f"activity graph deadlocked; unfinished nodes: {unfinished[:5]}"
            )
        return SimOutcome.from_nodes(self._nodes, response_time, resources)


@dataclass
class SimOutcome:
    """Timings and breakdowns of one executed activity graph."""

    response_time: float
    total_time: float
    phase_time: Dict[str, float] = field(default_factory=dict)
    site_busy: Dict[str, float] = field(default_factory=dict)
    bytes_transferred: int = 0
    nodes: int = 0
    #: The scheduled nodes (with start/finish), for tracing/explain.
    scheduled: Tuple[Node, ...] = ()
    #: Kernel-measured busy time per resource (device utilization).
    resource_busy: Dict[str, float] = field(default_factory=dict)
    #: Kernel-measured FIFO wait time per resource (queueing delay).
    resource_wait: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_nodes(
        cls,
        nodes: Sequence[Node],
        response_time: float,
        resources: Dict[str, Resource],
    ) -> "SimOutcome":
        phase_time: Dict[str, float] = {}
        site_busy: Dict[str, float] = {}
        bytes_transferred = 0
        total = 0.0
        for node in nodes:
            total += node.seconds
            phase_time[node.phase] = phase_time.get(node.phase, 0.0) + node.seconds
            # Network nodes (shared channel or per-pair channels) move
            # bytes; resource-less nodes are pure waiting (fault
            # timeouts/backoffs) and keep no device busy; everything
            # else is busy time at its site's devices.
            if node.resource_name == "net" or node.resource_name.startswith("net:"):
                bytes_transferred += node.nbytes
            elif node.resource_name:
                site_busy[node.site] = site_busy.get(node.site, 0.0) + node.seconds
        return cls(
            response_time=response_time,
            total_time=total,
            phase_time=phase_time,
            site_busy=site_busy,
            bytes_transferred=bytes_transferred,
            nodes=len(nodes),
            scheduled=tuple(nodes),
            resource_busy={
                name: res.busy_time for name, res in sorted(resources.items())
            },
            resource_wait={
                name: res.wait_time for name, res in sorted(resources.items())
            },
        )
