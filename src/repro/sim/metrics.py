"""Execution metrics reported by the strategies.

Bundles the simulated timings with logical work counters (bytes moved,
comparisons performed, objects shipped/checked) and the query answer
summary, so that benchmarks and tests can reason about both performance
and correctness in one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.obs.spans import Span, TraceEvent, spans_from_nodes
from repro.sim.taskgraph import SimOutcome
from repro.sim.trace import TraceEntry, entries_from_nodes


@dataclass
class WorkCounters:
    """Logical work performed by a strategy (cost-model inputs)."""

    objects_scanned: int = 0
    objects_shipped: int = 0
    assistants_looked_up: int = 0
    assistants_checked: int = 0
    signature_comparisons: int = 0
    comparisons: int = 0
    bytes_disk: int = 0
    bytes_network: int = 0
    #: Network messages sent (one per simulated transfer) — the quantity
    #: phase-O batching reduces.
    messages: int = 0
    # Mapping-index / decomposition cache traffic (engine-populated).
    cache_hits: int = 0
    cache_misses: int = 0
    # Fault-tolerance work (zero on fault-free executions).
    retries: int = 0
    timeouts: int = 0
    messages_lost: int = 0
    # Resilience work: relay-rerouted check requests and hedge races.
    checks_failed_over: int = 0
    hedges: int = 0
    # Constraint-planner savings: site blocks proven empty and assistant
    # checks proven UNKNOWN at decomposition (planner=constraints/full).
    sites_pruned: int = 0
    checks_pruned: int = 0
    #: Discharge-condition atoms cleared by recertification (repair).
    conditions_discharged: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Hits over total cache lookups (0.0 when nothing was looked up)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def merge(self, other: "WorkCounters") -> None:
        self.objects_scanned += other.objects_scanned
        self.objects_shipped += other.objects_shipped
        self.assistants_looked_up += other.assistants_looked_up
        self.assistants_checked += other.assistants_checked
        self.signature_comparisons += other.signature_comparisons
        self.comparisons += other.comparisons
        self.bytes_disk += other.bytes_disk
        self.bytes_network += other.bytes_network
        self.messages += other.messages
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.messages_lost += other.messages_lost
        self.checks_failed_over += other.checks_failed_over
        self.hedges += other.hedges
        self.sites_pruned += other.sites_pruned
        self.checks_pruned += other.checks_pruned
        self.conditions_discharged += other.conditions_discharged


@dataclass
class ExecutionMetrics:
    """Everything measured about one strategy execution."""

    strategy: str
    total_time: float
    response_time: float
    phase_time: Dict[str, float] = field(default_factory=dict)
    site_busy: Dict[str, float] = field(default_factory=dict)
    work: WorkCounters = field(default_factory=WorkCounters)
    certain_results: int = 0
    maybe_results: int = 0
    #: The full simulated schedule, for tracing/explain.
    trace: Tuple[TraceEntry, ...] = ()
    #: Structured spans of the schedule (site/resource/queue-delay aware).
    spans: Tuple[Span, ...] = ()
    #: Instantaneous observability events recorded by the strategy/engine.
    events: Tuple[TraceEvent, ...] = ()
    #: Kernel-measured FIFO wait per resource (queueing delay).
    resource_wait: Dict[str, float] = field(default_factory=dict)
    #: Injected outage windows as (site, start, end), for trace export.
    fault_windows: Tuple[Tuple[str, float, float], ...] = ()

    @classmethod
    def from_outcome(
        cls,
        strategy: str,
        outcome: SimOutcome,
        work: Optional[WorkCounters] = None,
        certain_results: int = 0,
        maybe_results: int = 0,
        events: Sequence[TraceEvent] = (),
        fault_windows: Sequence[Tuple[str, float, float]] = (),
    ) -> "ExecutionMetrics":
        return cls(
            strategy=strategy,
            total_time=outcome.total_time,
            response_time=outcome.response_time,
            phase_time=dict(outcome.phase_time),
            site_busy=dict(outcome.site_busy),
            work=work if work is not None else WorkCounters(),
            certain_results=certain_results,
            maybe_results=maybe_results,
            trace=tuple(entries_from_nodes(outcome.scheduled)),
            spans=spans_from_nodes(outcome.scheduled),
            events=tuple(events),
            resource_wait=dict(outcome.resource_wait),
            fault_windows=tuple(fault_windows),
        )

    def add_event(self, event: TraceEvent) -> None:
        """Append one observability event (engine/strategy bookkeeping)."""
        self.events = self.events + (event,)

    def summary(self) -> str:
        return (
            f"{self.strategy}: total={self.total_time:.4f}s "
            f"response={self.response_time:.4f}s "
            f"net={self.work.bytes_network}B "
            f"answers={self.certain_results}+{self.maybe_results}m"
        )
