"""Discrete-event simulation substrate.

The event kernel (:mod:`repro.sim.kernel`), the paper's cost model
(:mod:`repro.sim.costs`), activity-graph scheduling over simulated sites
(:mod:`repro.sim.taskgraph`) and the execution metrics bundle
(:mod:`repro.sim.metrics`).
"""

from repro.sim.costs import MICROSECOND, CostModel, PAPER_COSTS, table1_rows
from repro.sim.kernel import (
    Acquire,
    AllOf,
    Event,
    Process,
    Release,
    Resource,
    Simulator,
    Timeout,
)
from repro.sim.metrics import ExecutionMetrics, WorkCounters
from repro.sim.trace import TraceEntry, entries_from_nodes, format_timeline, phase_summary
from repro.sim.taskgraph import (
    FederationSim,
    Node,
    PHASE_I,
    PHASE_O,
    PHASE_P,
    PHASE_SCAN,
    PHASE_XFER,
    SimOutcome,
)

__all__ = [
    "Acquire",
    "AllOf",
    "CostModel",
    "Event",
    "ExecutionMetrics",
    "FederationSim",
    "MICROSECOND",
    "Node",
    "PAPER_COSTS",
    "PHASE_I",
    "PHASE_O",
    "PHASE_P",
    "PHASE_SCAN",
    "PHASE_XFER",
    "Process",
    "Release",
    "Resource",
    "SimOutcome",
    "Simulator",
    "Timeout",
    "TraceEntry",
    "WorkCounters",
    "entries_from_nodes",
    "format_timeline",
    "phase_summary",
    "table1_rows",
]
