"""Deterministic fault plans: who is down when, and how links degrade.

A :class:`FaultPlan` is a *declarative, seeded* description of the
failures one execution should experience:

* :class:`OutageWindow` — a site is down (crashed, partitioned away)
  during ``[start, start + duration)`` on the simulated clock and
  recovers at the window end;
* :class:`LinkFault` — a directed link carries a latency multiplier
  and/or a per-message loss probability (``"*"`` matches any endpoint).

The plan itself holds no randomness beyond its ``seed``: loss draws and
backoff jitter are derived from ``(plan seed, fault seed, link)`` by the
:class:`~repro.faults.injector.FaultInjector`, so the same plan + seed +
query always produces a byte-identical execution report.

Plans round-trip through JSON (``to_json``/``from_json``), parse from a
compact CLI spec (``from_spec``), and can be generated randomly for
chaos sweeps (``chaos``).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import FaultPlanError


@dataclass(frozen=True)
class OutageWindow:
    """One crash/recovery window of a site, in simulated seconds."""

    site: str
    start: float
    duration: float

    def __post_init__(self) -> None:
        if not self.site:
            raise FaultPlanError("outage window needs a site name")
        if self.start < 0:
            raise FaultPlanError(
                f"outage of {self.site!r} starts at negative time {self.start}"
            )
        if self.duration <= 0:
            raise FaultPlanError(
                f"outage of {self.site!r} has non-positive duration "
                f"{self.duration}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end

    def to_dict(self) -> Dict[str, object]:
        return {"site": self.site, "start": self.start,
                "duration": self.duration}

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "OutageWindow":
        return cls(
            site=str(raw["site"]),
            start=float(raw["start"]),
            duration=float(raw["duration"]),
        )


@dataclass(frozen=True)
class LinkFault:
    """Degradation of the directed link ``src -> dst`` (``"*"`` = any)."""

    src: str = "*"
    dst: str = "*"
    latency_multiplier: float = 1.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_multiplier < 1.0:
            raise FaultPlanError(
                f"link {self.src}->{self.dst}: latency multiplier "
                f"{self.latency_multiplier} < 1 would speed the link up"
            )
        if not 0.0 <= self.loss < 1.0:
            raise FaultPlanError(
                f"link {self.src}->{self.dst}: loss probability "
                f"{self.loss} outside [0, 1)"
            )

    def matches(self, src: str, dst: str) -> bool:
        return (self.src in ("*", src)) and (self.dst in ("*", dst))

    def to_dict(self) -> Dict[str, object]:
        return {
            "src": self.src,
            "dst": self.dst,
            "latency_multiplier": self.latency_multiplier,
            "loss": self.loss,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "LinkFault":
        return cls(
            src=str(raw.get("src", "*")),
            dst=str(raw.get("dst", "*")),
            latency_multiplier=float(raw.get("latency_multiplier", 1.0)),
            loss=float(raw.get("loss", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic failure scenario for one or more executions."""

    seed: int = 0
    outages: Tuple[OutageWindow, ...] = ()
    links: Tuple[LinkFault, ...] = ()

    @property
    def active(self) -> bool:
        """True when the plan injects anything at all (empty plan = off)."""
        return bool(self.outages) or any(
            l.latency_multiplier != 1.0 or l.loss > 0.0 for l in self.links
        )

    # --- site availability ------------------------------------------------

    def windows(self, site: str) -> Tuple[OutageWindow, ...]:
        return tuple(
            sorted((w for w in self.outages if w.site == site),
                   key=lambda w: w.start)
        )

    def is_down(self, site: str, t: float) -> bool:
        return any(w.covers(t) for w in self.outages if w.site == site)

    def next_up(self, site: str, t: float) -> float:
        """Earliest time >= *t* at which *site* is up (*t* if already up).

        Chained/overlapping windows are walked through: a site down in
        ``[0, 1)`` and ``[1, 2)`` is next up at ``2``.
        """
        up = t
        for window in self.windows(site):
            if window.covers(up):
                up = window.end
        return up

    def fault_windows(
        self, sites: Iterable[str]
    ) -> Tuple[Tuple[str, float, float], ...]:
        """(site, start, end) triples for *sites*, for trace export."""
        wanted = set(sites)
        return tuple(
            (w.site, w.start, w.end)
            for w in sorted(self.outages, key=lambda w: (w.site, w.start))
            if w.site in wanted
        )

    # --- link quality -----------------------------------------------------

    def link(self, src: str, dst: str) -> Tuple[float, float]:
        """(latency multiplier, loss probability) of the ``src->dst`` link.

        Several matching faults compose: multipliers multiply, losses
        combine as independent drop probabilities.
        """
        multiplier = 1.0
        survive = 1.0
        for fault in self.links:
            if fault.matches(src, dst):
                multiplier *= fault.latency_multiplier
                survive *= 1.0 - fault.loss
        return multiplier, 1.0 - survive

    def latency_multiplier(self, src: str, dst: str) -> float:
        return self.link(src, dst)[0]

    # --- construction -----------------------------------------------------

    @classmethod
    def single_site_loss(
        cls, site: str, seed: int = 0, start: float = 0.0,
        duration: float = 1e9,
    ) -> "FaultPlan":
        """The canonical chaos scenario: one site down (by default, for
        the whole execution)."""
        return cls(seed=seed,
                   outages=(OutageWindow(site, start, duration),))

    @classmethod
    def chaos(
        cls,
        sites: Sequence[str],
        rate: float,
        seed: int = 0,
        horizon: float = 2.0,
    ) -> "FaultPlan":
        """A random plan: each site suffers an outage with probability
        *rate*; window placement/length are drawn within *horizon*.

        Fully determined by ``(sites, rate, seed, horizon)`` — the chaos
        bench leans on this for run-to-run reproducibility.
        """
        if not 0.0 <= rate <= 1.0:
            raise FaultPlanError(f"fault rate {rate} outside [0, 1]")
        outages: List[OutageWindow] = []
        for site in sites:
            rng = random.Random(f"chaos:{seed}:{rate}:{site}")
            if rng.random() >= rate:
                continue
            start = rng.uniform(0.0, horizon * 0.5)
            duration = rng.uniform(horizon * 0.25, horizon)
            outages.append(OutageWindow(site, start, duration))
        return cls(seed=seed, outages=tuple(outages))

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse the compact CLI form.

        ``"DB2@0:1.5,DB3@0.2:0.5"`` — DB2 down from t=0 for 1.5 s and
        DB3 down from t=0.2 for 0.5 s.  Link faults use
        ``"link:SRC>DST:x<mult>:loss<p>"`` (either knob optional), e.g.
        ``"link:*>DB1:loss0.3"``.
        """
        outages: List[OutageWindow] = []
        links: List[LinkFault] = []
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if part.startswith("link:"):
                links.append(_parse_link(part))
                continue
            try:
                site, window = part.split("@", 1)
                start, duration = window.split(":", 1)
                outages.append(
                    OutageWindow(site.strip(), float(start), float(duration))
                )
            except ValueError as exc:
                raise FaultPlanError(
                    f"bad outage spec {part!r} (want SITE@START:DURATION)"
                ) from exc
        return cls(seed=seed, outages=tuple(outages), links=tuple(links))

    # --- (de)serialization ------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "outages": [w.to_dict() for w in self.outages],
            "links": [l.to_dict() for l in self.links],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "FaultPlan":
        return cls(
            seed=int(raw.get("seed", 0)),
            outages=tuple(
                OutageWindow.from_dict(w) for w in raw.get("outages", ())
            ),
            links=tuple(
                LinkFault.from_dict(l) for l in raw.get("links", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise FaultPlanError("fault plan JSON must be an object")
        return cls.from_dict(raw)


def _parse_link(part: str) -> LinkFault:
    pieces = part.split(":")[1:]  # drop the "link" tag
    if not pieces:
        raise FaultPlanError(f"bad link spec {part!r}")
    try:
        src, dst = pieces[0].split(">", 1)
    except ValueError as exc:
        raise FaultPlanError(
            f"bad link spec {part!r} (want link:SRC>DST:...)"
        ) from exc
    multiplier = 1.0
    loss = 0.0
    for knob in pieces[1:]:
        if knob.startswith("x"):
            multiplier = float(knob[1:])
        elif knob.startswith("loss"):
            loss = float(knob[4:])
        else:
            raise FaultPlanError(f"bad link knob {knob!r} in {part!r}")
    return LinkFault(src.strip() or "*", dst.strip() or "*",
                     latency_multiplier=multiplier, loss=loss)


#: The do-nothing plan (``active`` is False; execution is unchanged).
EMPTY_PLAN = FaultPlan()
