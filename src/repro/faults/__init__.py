"""Fault tolerance: deterministic fault injection + execution policies.

The federation's answer model already embraces missing *data* (certain
vs maybe results); this package extends the same philosophy to missing
*sites*: a component database that cannot answer is just another
missingness mechanism, and the strategies degrade to principled partial
answers instead of crashing.

* :mod:`repro.faults.plan` — :class:`FaultPlan`: seeded site outage
  windows and link latency/loss;
* :mod:`repro.faults.policy` — :class:`ExecutionPolicy`: timeout,
  retries, exponential backoff with seeded jitter, fail-fast vs degrade;
* :mod:`repro.faults.injector` — :class:`FaultInjector` /
  :class:`ExecutionContext`: the per-execution deterministic outcome of
  every contact attempt, plus availability bookkeeping.

See ``docs/FAULTS.md`` for the full schema and semantics.
"""

from repro.faults.injector import (
    Attempt,
    ExecutionContext,
    FaultInjector,
    Negotiation,
)
from repro.faults.plan import EMPTY_PLAN, FaultPlan, LinkFault, OutageWindow
from repro.faults.policy import (
    DEGRADE,
    FAIL_FAST,
    PATIENT,
    POLICIES,
    ExecutionPolicy,
    parse_policy_spec,
    resolve_policy,
)

__all__ = [
    "Attempt",
    "DEGRADE",
    "EMPTY_PLAN",
    "ExecutionContext",
    "ExecutionPolicy",
    "FAIL_FAST",
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "Negotiation",
    "OutageWindow",
    "PATIENT",
    "POLICIES",
    "parse_policy_spec",
    "resolve_policy",
]
