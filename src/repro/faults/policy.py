"""Execution policies: how a strategy behaves when a site won't answer.

An :class:`ExecutionPolicy` bundles the fault-handling knobs one
execution runs under:

* ``timeout_s`` — how long the requester waits for a response before
  declaring one attempt dead;
* ``max_retries`` — how many times a dead attempt is retried;
* ``backoff_base_s`` / ``backoff_multiplier`` / ``jitter`` — the
  exponential backoff between attempts (jitter is a seeded fraction, so
  runs stay deterministic);
* ``fail_fast`` — raise :class:`~repro.errors.UnavailableError` instead
  of degrading to a partial answer when a site stays unreachable;
* ``deadline_s`` — optional hard cap on the cumulative fault wait of one
  execution (exceeding it raises
  :class:`~repro.errors.ExecutionTimeout` even in degrade mode);
* ``hedge_delay_s`` — optional hedged dispatch: when a link negotiation
  waits longer than this (seeded, jittered) delay, the in-flight check
  is duplicated through the global-site relay and the faster route wins
  (see :mod:`repro.resilience.failover`).

The named presets (``DEGRADE``, ``FAIL_FAST``, ``PATIENT``) are what the
CLI's ``--policy`` flag selects; inline overrides like
``degrade:timeout=0.5,retries=3,hedge=0.1`` are parsed by
:func:`parse_policy_spec` and validated by
:meth:`ExecutionPolicy.__post_init__`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.errors import FaultPlanError


@dataclass(frozen=True)
class ExecutionPolicy:
    """Timeout / retry / degrade behavior of one query execution."""

    name: str = "degrade"
    timeout_s: float = 0.25
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.5
    fail_fast: bool = False
    deadline_s: Optional[float] = None
    hedge_delay_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise FaultPlanError(f"policy timeout {self.timeout_s} <= 0")
        if self.max_retries < 0:
            raise FaultPlanError(f"negative max_retries {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_multiplier < 1.0:
            raise FaultPlanError("backoff must be non-negative and growing")
        if not 0.0 <= self.jitter <= 1.0:
            raise FaultPlanError(f"jitter {self.jitter} outside [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise FaultPlanError(f"deadline {self.deadline_s} <= 0")
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise FaultPlanError(f"hedge delay {self.hedge_delay_s} <= 0")

    def backoff_s(self, attempt: int, u: float) -> float:
        """Backoff after the *attempt*-th failure (0-based); ``u`` in
        [0, 1) is the seeded jitter draw."""
        base = self.backoff_base_s * self.backoff_multiplier ** attempt
        return base * (1.0 + self.jitter * u)


#: Skip unreachable sites and return an annotated partial answer.
DEGRADE = ExecutionPolicy(name="degrade")

#: Raise UnavailableError on the first site that exhausts its retries.
FAIL_FAST = ExecutionPolicy(name="fail-fast", fail_fast=True, max_retries=0)

#: Wait out transient outages: longer timeout, more retries.
PATIENT = ExecutionPolicy(
    name="patient", timeout_s=0.5, max_retries=5, backoff_base_s=0.1
)

POLICIES: Dict[str, ExecutionPolicy] = {
    policy.name: policy for policy in (DEGRADE, FAIL_FAST, PATIENT)
}


def _parse_bool(raw: str) -> bool:
    lowered = raw.lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(raw)


#: Spec key -> (ExecutionPolicy field, converter).
_SPEC_FIELDS: Dict[str, Tuple[str, Callable[[str], object]]] = {
    "timeout": ("timeout_s", float),
    "retries": ("max_retries", int),
    "backoff": ("backoff_base_s", float),
    "multiplier": ("backoff_multiplier", float),
    "jitter": ("jitter", float),
    "fail_fast": ("fail_fast", _parse_bool),
    "deadline": ("deadline_s", float),
    "hedge": ("hedge_delay_s", float),
}


def parse_policy_spec(spec: str) -> ExecutionPolicy:
    """Parse ``"<preset>[:key=value[,key=value...]]"`` into a policy.

    The preset names a base policy from :data:`POLICIES`; each override
    maps onto an :class:`ExecutionPolicy` field (``timeout``,
    ``retries``, ``backoff``, ``multiplier``, ``jitter``, ``fail_fast``,
    ``deadline``, ``hedge``).  The rebuilt dataclass re-runs
    ``__post_init__``, so out-of-range overrides fail validation with
    the same errors a programmatic construction would raise.
    """
    name, _, rest = spec.partition(":")
    base = POLICIES.get(name)
    if base is None:
        raise FaultPlanError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        )
    if not rest:
        return base
    overrides: Dict[str, object] = {}
    for part in rest.split(","):
        key, eq, raw = part.partition("=")
        key = key.strip()
        if not eq or not key or not raw.strip():
            raise FaultPlanError(
                f"malformed policy override {part!r} in {spec!r}; "
                "expected key=value"
            )
        try:
            field_name, convert = _SPEC_FIELDS[key]
        except KeyError:
            raise FaultPlanError(
                f"unknown policy override {key!r} in {spec!r}; "
                f"choose from {sorted(_SPEC_FIELDS)}"
            ) from None
        try:
            overrides[field_name] = convert(raw.strip())
        except ValueError:
            raise FaultPlanError(
                f"bad value {raw.strip()!r} for policy override {key!r} "
                f"in {spec!r}"
            ) from None
    # replace() re-runs __post_init__, so validation errors surface here.
    return dataclasses.replace(base, name=spec, **overrides)


def resolve_policy(
    policy: Union[str, ExecutionPolicy, None]
) -> ExecutionPolicy:
    """Accept a policy object, a preset name or inline spec
    (``"degrade:timeout=0.5,retries=3,hedge=0.1"``), or None
    (-> DEGRADE)."""
    if policy is None:
        return DEGRADE
    if isinstance(policy, ExecutionPolicy):
        return policy
    return parse_policy_spec(policy)
