"""Execution policies: how a strategy behaves when a site won't answer.

An :class:`ExecutionPolicy` bundles the fault-handling knobs one
execution runs under:

* ``timeout_s`` — how long the requester waits for a response before
  declaring one attempt dead;
* ``max_retries`` — how many times a dead attempt is retried;
* ``backoff_base_s`` / ``backoff_multiplier`` / ``jitter`` — the
  exponential backoff between attempts (jitter is a seeded fraction, so
  runs stay deterministic);
* ``fail_fast`` — raise :class:`~repro.errors.UnavailableError` instead
  of degrading to a partial answer when a site stays unreachable;
* ``deadline_s`` — optional hard cap on the cumulative fault wait of one
  execution (exceeding it raises
  :class:`~repro.errors.ExecutionTimeout` even in degrade mode).

The named presets (``DEGRADE``, ``FAIL_FAST``, ``PATIENT``) are what the
CLI's ``--policy`` flag selects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.errors import FaultPlanError


@dataclass(frozen=True)
class ExecutionPolicy:
    """Timeout / retry / degrade behavior of one query execution."""

    name: str = "degrade"
    timeout_s: float = 0.25
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.5
    fail_fast: bool = False
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise FaultPlanError(f"policy timeout {self.timeout_s} <= 0")
        if self.max_retries < 0:
            raise FaultPlanError(f"negative max_retries {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_multiplier < 1.0:
            raise FaultPlanError("backoff must be non-negative and growing")
        if not 0.0 <= self.jitter <= 1.0:
            raise FaultPlanError(f"jitter {self.jitter} outside [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise FaultPlanError(f"deadline {self.deadline_s} <= 0")

    def backoff_s(self, attempt: int, u: float) -> float:
        """Backoff after the *attempt*-th failure (0-based); ``u`` in
        [0, 1) is the seeded jitter draw."""
        base = self.backoff_base_s * self.backoff_multiplier ** attempt
        return base * (1.0 + self.jitter * u)


#: Skip unreachable sites and return an annotated partial answer.
DEGRADE = ExecutionPolicy(name="degrade")

#: Raise UnavailableError on the first site that exhausts its retries.
FAIL_FAST = ExecutionPolicy(name="fail-fast", fail_fast=True, max_retries=0)

#: Wait out transient outages: longer timeout, more retries.
PATIENT = ExecutionPolicy(
    name="patient", timeout_s=0.5, max_retries=5, backoff_base_s=0.1
)

POLICIES: Dict[str, ExecutionPolicy] = {
    policy.name: policy for policy in (DEGRADE, FAIL_FAST, PATIENT)
}


def resolve_policy(
    policy: Union[str, ExecutionPolicy, None]
) -> ExecutionPolicy:
    """Accept a policy object, a preset name, or None (-> DEGRADE)."""
    if policy is None:
        return DEGRADE
    if isinstance(policy, ExecutionPolicy):
        return policy
    try:
        return POLICIES[policy]
    except KeyError:
        raise FaultPlanError(
            f"unknown policy {policy!r}; choose from {sorted(POLICIES)}"
        ) from None
