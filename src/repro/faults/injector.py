"""The fault injector and the per-execution fault context.

:class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` + :class:`~repro.faults.policy
.ExecutionPolicy` into concrete, deterministic *negotiations*: "does
contacting site B from site A succeed, after how many attempts, and how
long does the requester wait?".  Attempt times are computed analytically
(attempt *k* happens after the preceding timeouts and jittered backoffs),
so negotiation outcomes are known before the discrete-event simulation
runs; the taskgraph then schedules matching wait nodes so the waits are
also visible on the simulated clock.

Determinism: every random draw (message loss, backoff jitter) comes from
a generator seeded with ``(fault seed, plan seed, src, dst)``, so the
same plan + seed + query yields a byte-identical execution report, and
outcomes do not depend on the order in which links are negotiated.

:class:`ExecutionContext` wraps one execution's injector together with
the availability bookkeeping every strategy shares (sites contacted /
skipped / retried, messages lost, cumulative wait).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.health import SiteHealthRegistry

from repro.errors import ExecutionTimeout, UnavailableError
from repro.faults.plan import FaultPlan
from repro.faults.policy import DEGRADE, ExecutionPolicy

#: Attempt outcomes.
OK = "ok"
DOWN = "down"
LOST = "lost"
#: Synthetic outcome of a contact suppressed by an open circuit breaker
#: (no retry ladder is paid; the wait is zero by construction).
OPEN_CIRCUIT = "open-circuit"


@dataclass(frozen=True)
class Attempt:
    """One contact attempt: when it happened and how it went."""

    at: float
    outcome: str  # OK / DOWN / LOST
    wait_s: float = 0.0  # timeout + backoff charged when the attempt failed

    @property
    def failed(self) -> bool:
        return self.outcome != OK


@dataclass(frozen=True)
class Negotiation:
    """The deterministic outcome of contacting *dst* from *src*."""

    src: str
    dst: str
    ok: bool
    attempts: Tuple[Attempt, ...]

    @property
    def retries(self) -> int:
        """Attempts beyond the first (failed or eventually successful)."""
        return max(0, len(self.attempts) - 1)

    @property
    def failures(self) -> Tuple[Attempt, ...]:
        return tuple(a for a in self.attempts if a.failed)

    @property
    def wait_s(self) -> float:
        """Total requester wait spent on timeouts and backoffs."""
        return sum(a.wait_s for a in self.attempts)

    @property
    def reason(self) -> str:
        """Why the last failed attempt failed ('' when none failed)."""
        failed = self.failures
        return failed[-1].outcome if failed else ""


class FaultInjector:
    """Evaluates contact negotiations under one plan + policy + seed."""

    def __init__(
        self,
        plan: FaultPlan,
        policy: ExecutionPolicy = DEGRADE,
        seed: int = 0,
    ) -> None:
        self.plan = plan
        self.policy = policy
        self.seed = seed
        self._memo: Dict[Tuple[str, str], Negotiation] = {}

    def _rng(self, src: str, dst: str) -> random.Random:
        return random.Random(
            f"faults:{self.seed}:{self.plan.seed}:{src}->{dst}"
        )

    def negotiate(self, src: str, dst: str, at: float = 0.0) -> Negotiation:
        """Contact *dst* from *src*; memoized per link per execution.

        The memo models connection state: once a link is negotiated
        (up or given up on), later traffic on the same link reuses the
        outcome instead of re-paying the retry ladder.
        """
        key = (src, dst)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        policy = self.policy
        rng = self._rng(src, dst)
        _multiplier, loss = self.plan.link(src, dst)
        attempts: List[Attempt] = []
        t = at
        ok = False
        for attempt_no in range(policy.max_retries + 1):
            down = self.plan.is_down(dst, t)
            # Draw in a fixed order so outcomes stay reproducible even
            # when earlier attempts short-circuit.
            u_loss = rng.random()
            u_jitter = rng.random()
            lost = (not down) and loss > 0.0 and u_loss < loss
            if not down and not lost:
                attempts.append(Attempt(at=t, outcome=OK))
                ok = True
                break
            wait = policy.timeout_s
            if attempt_no < policy.max_retries:
                wait += policy.backoff_s(attempt_no, u_jitter)
            attempts.append(
                Attempt(at=t, outcome=DOWN if down else LOST, wait_s=wait)
            )
            t += wait
        negotiation = Negotiation(
            src=src, dst=dst, ok=ok, attempts=tuple(attempts)
        )
        self._memo[key] = negotiation
        return negotiation


class ExecutionContext:
    """One execution's fault state: injector + availability bookkeeping.

    Strategies call :meth:`contact` before talking to a site; the
    context accumulates what :class:`~repro.core.results.Availability`
    reports and enforces the policy's fail-fast and deadline semantics.
    """

    def __init__(
        self,
        plan: FaultPlan,
        policy: ExecutionPolicy = DEGRADE,
        seed: int = 0,
        failover: bool = False,
        health: Optional["SiteHealthRegistry"] = None,
        batch_checks: Optional[bool] = None,
        columnar: Optional[bool] = None,
        planner: Optional[str] = None,
        conditions: Optional[bool] = None,
    ) -> None:
        self.plan = plan
        self.policy = policy
        self.injector = FaultInjector(plan, policy, seed=seed)
        #: This execution's wire protocol for phase-O checks.  Carried
        #: here (not mutated onto the Strategy instance, which may be
        #: shared between concurrent sessions); ``None`` defers to the
        #: strategy's own default — see
        #: :meth:`Strategy.effective_batch_checks`.
        self.batch_checks = batch_checks
        #: This execution's local-evaluation path (columnar extent
        #: kernels vs per-object rows).  Same carrier pattern as
        #: ``batch_checks``; ``None`` defers to the strategy's own
        #: default — see :meth:`Strategy.effective_columnar`.
        self.columnar = columnar
        #: This execution's adaptive-planning mode ("static" /
        #: "feedback" / "constraints" / "full").  Same carrier pattern
        #: as ``batch_checks``; ``None`` defers to the strategy's own
        #: default — see :meth:`Strategy.effective_planner`.
        self.planner = planner
        #: Whether this execution attaches discharge conditions and
        #: captures repair state.  Same carrier pattern as
        #: ``batch_checks``; ``None`` defers to the strategy's own
        #: default — see :meth:`Strategy.effective_conditions`.
        self.conditions = conditions
        self.contacted: List[str] = []
        self.skipped: List[str] = []
        self.retried: Dict[str, int] = {}
        self.checks_skipped = 0
        self.messages_lost = 0
        self.wait_s = 0.0
        #: Totals for the work counters: every re-attempt and every
        #: timed-out attempt across all fresh negotiations.
        self.retries = 0
        self.timeouts = 0
        #: Links whose wait ladder was already scheduled as delay nodes
        #: (strategies consult this so a link's waits appear only once).
        self.scheduled_links: set = set()
        #: Replica failover: reroute checks over the global-site relay
        #: and demote rows only when every isomeric copy is unreachable.
        self.failover = failover
        if health is None and failover:
            from repro.resilience.health import SiteHealthRegistry

            health = SiteHealthRegistry(seed=seed)
        #: Per-site breakers; None when failover is disabled, keeping
        #: the original contact path byte-identical.
        self.health = health
        #: Check requests recovered by rerouting through the relay.
        self.checks_failed_over = 0
        #: Hedge races fired / won by the relay route.
        self.hedges = 0
        self.hedges_won = 0
        #: Queried sites whose whole block dropped (no local results).
        self.queried_sites_down: List[str] = []
        #: Binding-completion walks left unresolved by unreachable sites.
        self.fetches_unresolved = 0
        #: Whether the executing strategy maintains the recovery signals
        #: above (localized strategies with failover do; CA does not).
        self.recovery_tracked = False

    def contact(self, src: str, dst: str) -> Negotiation:
        """Negotiate the ``src -> dst`` link, with policy enforcement.

        With a health registry attached (failover mode), a fresh
        negotiation to an open-circuit site is suppressed: a synthetic
        zero-wait ``open-circuit`` negotiation is memoized instead of
        paying the retry ladder, and half-open probes go through the
        normal injector path.

        Raises:
            UnavailableError: the link is dead and the policy fails fast.
            ExecutionTimeout: the cumulative wait blew the deadline.
        """
        fresh = (src, dst) not in self.injector._memo
        if fresh and self.health is not None and not self.health.allow(dst):
            negotiation = Negotiation(
                src=src,
                dst=dst,
                ok=False,
                attempts=(Attempt(at=0.0, outcome=OPEN_CIRCUIT),),
            )
            self.injector._memo[(src, dst)] = negotiation
            if dst not in self.skipped:
                self.skipped.append(dst)
        else:
            negotiation = self.injector.negotiate(src, dst)
            if fresh:
                self.wait_s += negotiation.wait_s
                self.retries += negotiation.retries
                self.timeouts += len(negotiation.failures)
                if negotiation.retries and negotiation.ok:
                    self.retried[dst] = (
                        self.retried.get(dst, 0) + negotiation.retries
                    )
                self.messages_lost += sum(
                    1 for a in negotiation.attempts if a.outcome == LOST
                )
                if negotiation.ok:
                    if dst not in self.contacted:
                        self.contacted.append(dst)
                elif dst not in self.skipped:
                    self.skipped.append(dst)
                if self.health is not None:
                    self.health.record(
                        dst, negotiation.ok, latency_s=negotiation.wait_s
                    )
        deadline = self.policy.deadline_s
        if deadline is not None and self.wait_s > deadline:
            raise ExecutionTimeout(self.wait_s, deadline)
        if not negotiation.ok and self.policy.fail_fast:
            raise UnavailableError(
                dst,
                attempts=len(negotiation.attempts),
                reason=negotiation.reason or DOWN,
            )
        return negotiation

    def note_skipped_check(self, count: int = 1) -> None:
        self.checks_skipped += count

    def note_queried_site_down(self, site: str) -> None:
        """A queried site's whole block dropped — unrecoverable loss."""
        if site not in self.queried_sites_down:
            self.queried_sites_down.append(site)

    def reachable(self, src: str, dst: str) -> bool:
        """Whether the ``src -> dst`` link negotiates successfully
        (policy enforcement included — fail-fast links raise instead)."""
        return self.contact(src, dst).ok

    def hedge_delay(self, src: str, dst: str) -> Optional[float]:
        """The effective (seeded, jittered) hedge delay for one link.

        None when the policy does not hedge.  The jitter draw depends
        only on (fault seed, plan seed, src, dst), so hedge decisions
        are byte-deterministic and order-independent.
        """
        base = self.policy.hedge_delay_s
        if base is None:
            return None
        u = random.Random(
            f"hedge:{self.injector.seed}:{self.plan.seed}:{src}->{dst}"
        ).random()
        return base * (1.0 + self.policy.jitter * u)

    @property
    def complete(self) -> bool:
        return not self.skipped and self.checks_skipped == 0

    @property
    def fully_recovered(self) -> bool:
        """Whether failover rerouting neutralized every injected fault.

        True only when the executing strategy tracks recovery and no
        unrecoverable degradation remains: every queried site answered,
        every skipped check pair was settled by a live isomeric copy,
        and every binding-completion walk resolved.  A fully recovered
        answer is byte-identical to the fault-free baseline.
        """
        return (
            self.recovery_tracked
            and not self.queried_sites_down
            and self.checks_skipped == 0
            and self.fetches_unresolved == 0
        )

    def availability(self) -> "Availability":
        """Snapshot the bookkeeping as a result annotation."""
        from repro.core.results import Availability

        return Availability(
            complete=self.complete,
            sites_contacted=tuple(sorted(self.contacted)),
            sites_skipped=tuple(sorted(self.skipped)),
            retries=tuple(sorted(self.retried.items())),
            checks_skipped=self.checks_skipped,
            messages_lost=self.messages_lost,
            fault_wait_s=self.wait_s,
            checks_failed_over=self.checks_failed_over,
            hedges=self.hedges,
            hedges_won=self.hedges_won,
            fully_recovered=self.fully_recovered,
            queried_sites_down=tuple(sorted(self.queried_sites_down)),
            breaker=(
                self.health.snapshot() if self.health is not None else ()
            ),
            contacts_suppressed=(
                self.health.suppressed_total
                if self.health is not None else 0
            ),
        )
