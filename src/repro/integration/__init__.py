"""Federation integration layer.

Schema integration (global classes from constituent classes), object
isomerism discovery, replicated GOid mapping tables, and the outerjoin
materialization of global classes used by the centralized strategy.

Re-exports are lazy (PEP 562) to keep package initialization cycle-free
(see :mod:`repro.objectdb` for the rationale).
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "ClassCorrespondence": "repro.integration.global_schema",
    "ConstituentRef": "repro.integration.isomerism",
    "GlobalExtent": "repro.integration.outerjoin",
    "GlobalSchema": "repro.integration.global_schema",
    "IntegrationStats": "repro.integration.outerjoin",
    "MappingCatalog": "repro.integration.mapping",
    "MappingTable": "repro.integration.mapping",
    "build_catalog": "repro.integration.isomerism",
    "discover_isomerism": "repro.integration.isomerism",
    "integrate_class": "repro.integration.outerjoin",
    "integrate_schemas": "repro.integration.global_schema",
    "isomerism_ratio": "repro.integration.isomerism",
    "materialize": "repro.integration.outerjoin",
    "table_from_correspondences": "repro.integration.isomerism",
    "CatalogUpdate": "repro.integration.replication",
    "PropagationReport": "repro.integration.replication",
    "ReplicatedCatalog": "repro.integration.replication",
    "AuditReport": "repro.integration.validate",
    "Finding": "repro.integration.validate",
    "check_federation": "repro.integration.validate",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
