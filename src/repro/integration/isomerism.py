"""Identifying isomeric objects and building GOid mapping tables.

The paper assumes isomeric objects "have been determined" by the strategy
of its reference [5] (Chen, Tsai & Koh 1996), which matches objects across
component databases through common key attributes.  We implement that
substrate here so that a federation can be stood up from raw component
databases alone:

* :func:`discover_isomerism` matches objects of the constituent classes of
  one global class on the equal, non-null values of a designated *key
  attribute* (e.g. ``s-no`` for students, ``name`` for teachers);
* :func:`build_catalog` runs discovery for every global class and returns
  the replicated :class:`~repro.integration.mapping.MappingCatalog`;
* explicit correspondences (pre-computed GOid assignments) are accepted
  as well, matching the paper's "assume the isomeric objects have been
  determined".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import MappingError
from repro.integration.mapping import MappingCatalog, MappingTable
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.values import Value, is_null


@dataclass(frozen=True)
class ConstituentRef:
    """Names one constituent class: (database name, local class name)."""

    db_name: str
    class_name: str


def discover_isomerism(
    global_class: str,
    constituents: Sequence[ConstituentRef],
    databases: Mapping[str, ComponentDatabase],
    key_attribute: str,
    goid_prefix: Optional[str] = None,
) -> MappingTable:
    """Build the mapping table of *global_class* by key-attribute matching.

    Objects across the constituent classes with equal, non-null values of
    *key_attribute* are deemed isomeric and share one GOid.  Objects whose
    key is null get their own singleton GOid (nothing to match on).

    GOids are assigned deterministically in (key, first-seen) order so
    repeated discovery over the same data yields identical tables.
    """
    prefix = goid_prefix or f"g{global_class.lower()}"
    table = MappingTable(global_class=global_class)
    by_key: Dict[Value, List[LOid]] = {}
    unkeyed: List[LOid] = []
    for ref in constituents:
        db = databases[ref.db_name]
        if ref.class_name not in db.schema.class_names:
            continue
        for loid, obj in sorted(db.extent(ref.class_name).items()):
            key = obj.get(key_attribute)
            if is_null(key):
                unkeyed.append(loid)
            else:
                by_key.setdefault(key, []).append(loid)

    counter = itertools.count(1)
    for key in sorted(by_key, key=repr):
        goid = GOid(f"{prefix}{next(counter)}")
        per_db_seen: Dict[str, LOid] = {}
        for loid in by_key[key]:
            if loid.db in per_db_seen:
                # Two same-key objects in one database are distinct
                # entities locally; give the later one its own GOid.
                table.add(GOid(f"{prefix}{next(counter)}"), loid)
                continue
            per_db_seen[loid.db] = loid
            table.add(goid, loid)
    for loid in unkeyed:
        table.add(GOid(f"{prefix}{next(counter)}"), loid)
    return table


def table_from_correspondences(
    global_class: str,
    correspondences: Iterable[Tuple[GOid, Iterable[LOid]]],
) -> MappingTable:
    """Build a mapping table from pre-computed GOid assignments."""
    table = MappingTable(global_class=global_class)
    for goid, loids in correspondences:
        loids = tuple(loids)
        if not loids:
            raise MappingError(f"{global_class}: {goid} maps to no LOid")
        for loid in loids:
            table.add(goid, loid)
    return table


def build_catalog(
    constituents_by_class: Mapping[str, Sequence[ConstituentRef]],
    databases: Mapping[str, ComponentDatabase],
    key_attributes: Mapping[str, str],
) -> MappingCatalog:
    """Discover isomerism for every global class; return the catalog.

    Args:
        constituents_by_class: global class name -> its constituent refs.
        databases: database name -> component database.
        key_attributes: global class name -> matching key attribute.
    """
    catalog = MappingCatalog()
    for global_class, constituents in constituents_by_class.items():
        key = key_attributes.get(global_class)
        if key is None:
            raise MappingError(
                f"no key attribute configured for global class "
                f"{global_class!r}"
            )
        table = discover_isomerism(global_class, constituents, databases, key)
        catalog.register(table)
    return catalog


def isomerism_ratio(table: MappingTable) -> float:
    """Fraction of entities stored in more than one component database.

    Mirrors the paper's workload parameter ``R_iso`` ("ratio of objects
    having isomeric objects").
    """
    total = len(table)
    if total == 0:
        return 0.0
    multi = sum(1 for _, row in table.entries() if len(row) > 1)
    return multi / total
