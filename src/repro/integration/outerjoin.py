"""Materializing global classes: outerjoin over GOids.

The centralized strategy ships every object of the local root and branch
classes to the global processing site, then integrates the constituent
extents of each global class with an *outerjoin over the join attribute
GOid* (paper, step CA_G2 and Figure 6):

* isomeric objects (same GOid) merge into one integrated object; an
  object with missing data "gets the data from its isomeric objects";
* LOids stored in complex attributes are translated to GOids;
* every object appears in the output even when it has no isomeric partner
  (that is what makes the join *outer*);
* multi-valued global attributes collect all distinct contributed values.

Under faults the outerjoin may run over a *partial* materialization
(some export sites unreachable).  The centralized strategy then demotes
every answer row, attaching ``SiteDown`` condition atoms naming the
missing extents (:mod:`repro.conditions`); the re-certifier later
fetches only those extents, re-runs this integration on the completed
inputs, and promotes — without re-shipping the extents that arrived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import MappingError
from repro.integration.global_schema import GlobalSchema
from repro.integration.mapping import MappingCatalog
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.objects import IntegratedObject, LocalObject
from repro.objectdb.values import MultiValue, NULL, Value, is_null


@dataclass
class IntegrationStats:
    """Work performed by one class integration (for the cost model)."""

    objects_in: int = 0
    objects_out: int = 0
    comparisons: int = 0
    translations: int = 0

    def merge(self, other: "IntegrationStats") -> None:
        self.objects_in += other.objects_in
        self.objects_out += other.objects_out
        self.comparisons += other.comparisons
        self.translations += other.translations


class SiteExports(Mapping[str, Tuple[LocalObject, ...]]):
    """Typed per-site export sets of one global class.

    The integration layer used to take a plain ``Mapping[str, Iterable]``
    and paper over the missing-site case with
    ``exports.get(db_name, ())  # type: ignore[call-overload]`` — an
    untyped hole where a ``None`` or a consumed iterator could slip
    through.  This wrapper makes the contract real: values are
    materialized to tuples at construction (re-iterable, never mutated by
    the join), and :meth:`for_db` returns an empty typed tuple for a site
    that shipped nothing.
    """

    __slots__ = ("_by_db",)

    def __init__(
        self,
        exports: Optional[Mapping[str, Iterable[LocalObject]]] = None,
    ) -> None:
        self._by_db: Dict[str, Tuple[LocalObject, ...]] = {}
        if exports is not None:
            for db_name, objs in exports.items():
                self._by_db[db_name] = tuple(objs)

    @classmethod
    def coerce(
        cls, exports: Mapping[str, Iterable[LocalObject]]
    ) -> "SiteExports":
        """Wrap a plain mapping (identity when already wrapped)."""
        if isinstance(exports, cls):
            return exports
        return cls(exports)

    def for_db(self, db_name: str) -> Tuple[LocalObject, ...]:
        """The objects *db_name* shipped — an empty tuple for absent sites."""
        return self._by_db.get(db_name, ())

    def __getitem__(self, db_name: str) -> Tuple[LocalObject, ...]:
        return self._by_db[db_name]

    def __iter__(self):
        return iter(self._by_db)

    def __len__(self) -> int:
        return len(self._by_db)


class GlobalExtent:
    """Materialized global classes at the processing site."""

    def __init__(self) -> None:
        self._by_class: Dict[str, Dict[GOid, IntegratedObject]] = {}
        self._flat: Dict[GOid, IntegratedObject] = {}

    def install(self, class_name: str, objects: Dict[GOid, IntegratedObject]) -> None:
        self._by_class[class_name] = objects
        self._flat.update(objects)

    def extent(self, class_name: str) -> Dict[GOid, IntegratedObject]:
        return self._by_class.get(class_name, {})

    def deref(self, ref: Union[LOid, GOid]) -> Optional[IntegratedObject]:
        """Dereference a GOid (LOids never resolve in the global extent)."""
        if isinstance(ref, GOid):
            return self._flat.get(ref)
        return None

    def classes(self) -> Tuple[str, ...]:
        return tuple(self._by_class)

    def __len__(self) -> int:
        return len(self._flat)


def integrate_class(
    global_class: str,
    global_schema: GlobalSchema,
    catalog: MappingCatalog,
    exports: Mapping[str, Iterable[LocalObject]],
    stats: Optional[IntegrationStats] = None,
    columnar: bool = True,
) -> Dict[GOid, IntegratedObject]:
    """Outerjoin the exported constituent extents of *global_class*.

    Args:
        exports: db name -> the local objects of the constituent class
            shipped from that site (already projected on query
            attributes); accepts a plain mapping or a
            :class:`SiteExports`.
        stats: optional accumulator for integration work.
        columnar: use the batched merge (per-class attribute metadata
            and mapping tables hoisted out of the per-object loop).
            Output objects, stats charges, and raised errors are
            identical either way.

    Merge policy per attribute (matching Figure 6):
        * multi-valued attributes collect all distinct non-null values;
        * otherwise the first non-null value wins, visiting contributors
          in the correspondence's constituent order (deterministic).

    Raises:
        MappingError: when an exported object has no GOid in the catalog.
    """
    stats = stats if stats is not None else IntegrationStats()
    table = catalog.table(global_class)
    cdef = global_schema.cls(global_class)
    ordered_dbs = global_schema.databases_of(global_class)
    site_exports = SiteExports.coerce(exports)

    grouped: Dict[GOid, List[LocalObject]] = {}
    for db_name in ordered_dbs:
        for obj in site_exports.for_db(db_name):
            stats.objects_in += 1
            stats.comparisons += 1  # hash probe on the join attribute
            goid = table.goid_of(obj.loid)
            if goid is None:
                raise MappingError(
                    f"exported object {obj.loid} of class {global_class!r} "
                    "has no GOid in the mapping catalog"
                )
            grouped.setdefault(goid, []).append(obj)

    if columnar:
        return _merge_groups_batched(
            global_class, cdef, catalog, grouped, stats
        )

    integrated: Dict[GOid, IntegratedObject] = {}
    for goid, contributors in grouped.items():
        values: Dict[str, Value] = {}
        for attr in cdef.attributes:
            merged = _merge_attribute(
                attr.name,
                attr.multi_valued,
                attr.is_complex,
                attr.domain,
                contributors,
                catalog,
                stats,
            )
            if not is_null(merged):
                values[attr.name] = merged
        integrated[goid] = IntegratedObject(
            goid=goid,
            class_name=global_class,
            values=values,
            sources=tuple(obj.loid for obj in contributors),
        )
        stats.objects_out += 1
    return integrated


def _merge_groups_batched(
    global_class: str,
    cdef,
    catalog: MappingCatalog,
    grouped: Dict[GOid, List[LocalObject]],
    stats: IntegrationStats,
) -> Dict[GOid, IntegratedObject]:
    """Batched merge: one pass per attribute column over all groups.

    The per-object path re-reads attribute metadata (name, flags,
    domain) from the schema and re-resolves the domain's mapping table
    through the catalog for every ``(group, attribute)`` pair; here both
    are hoisted once per class into a flat descriptor list the group
    loop runs over.  Transparency contract: integrated objects, stats
    charges, and :class:`MappingError`\\ s are identical to the
    per-object merge — the (group, attribute, contributor) visit order
    is unchanged, so first-non-null selection, translation charges, and
    the first error raised all coincide.
    """
    # Hoisted per-attribute metadata: (name, multi_valued, is_complex,
    # domain mapping table or None).  catalog.table() is resolved once
    # per complex attribute instead of once per (group, member).
    attr_meta = [
        (
            attr.name,
            attr.multi_valued,
            attr.is_complex,
            catalog.table(attr.domain)
            if attr.is_complex and attr.domain is not None
            else None,
        )
        for attr in cdef.attributes
    ]
    integrated: Dict[GOid, IntegratedObject] = {}
    for goid, contributors in grouped.items():
        values: Dict[str, Value] = {}
        for name, multi_valued, is_complex, domain_table in attr_meta:
            collected: List[Value] = []
            for obj in contributors:
                raw = obj.get(name)
                if is_null(raw):
                    continue
                members = (
                    list(raw) if isinstance(raw, MultiValue) else [raw]
                )
                for member in members:
                    if is_complex:
                        if isinstance(member, GOid):
                            collected.append(member)
                            continue
                        if not isinstance(member, LOid):
                            raise MappingError(
                                "complex attribute holds non-reference "
                                f"value {member!r}"
                            )
                        if domain_table is None:
                            raise MappingError(
                                "complex attribute without a domain class"
                            )
                        stats.translations += 1
                        stats.comparisons += 1  # mapping-table probe
                        translated = domain_table.goid_of(member)
                        if translated is None:
                            # Dangling local reference -> missing data.
                            continue
                        collected.append(translated)
                    else:
                        collected.append(member)
                if collected and not multi_valued:
                    break  # first non-null contributor wins
            if collected:
                values[name] = (
                    MultiValue(collected) if multi_valued else collected[0]
                )
        integrated[goid] = IntegratedObject(
            goid=goid,
            class_name=global_class,
            values=values,
            sources=tuple(obj.loid for obj in contributors),
        )
        stats.objects_out += 1
    return integrated


def _merge_attribute(
    name: str,
    multi_valued: bool,
    is_complex: bool,
    domain: Optional[str],
    contributors: List[LocalObject],
    catalog: MappingCatalog,
    stats: IntegrationStats,
) -> Value:
    """Merge one attribute across isomeric contributors."""
    collected: List[Value] = []
    for obj in contributors:
        raw = obj.get(name)
        if is_null(raw):
            continue
        members = list(raw) if isinstance(raw, MultiValue) else [raw]
        for member in members:
            if is_complex:
                member = _translate_reference(member, domain, catalog, stats)
                if is_null(member):
                    continue
            collected.append(member)
        if collected and not multi_valued:
            break  # first non-null contributor wins
    if not collected:
        return NULL
    if multi_valued:
        return MultiValue(collected)
    return collected[0]


def _translate_reference(
    value: Value,
    domain: Optional[str],
    catalog: MappingCatalog,
    stats: IntegrationStats,
) -> Value:
    """Rewrite a complex-attribute LOid to the GOid of its entity."""
    if isinstance(value, GOid):
        return value
    if not isinstance(value, LOid):
        raise MappingError(
            f"complex attribute holds non-reference value {value!r}"
        )
    if domain is None:
        raise MappingError("complex attribute without a domain class")
    stats.translations += 1
    stats.comparisons += 1  # mapping-table probe
    goid = catalog.table(domain).goid_of(value)
    if goid is None:
        # Dangling local reference: the referenced entity was never
        # catalogued.  Treat as missing data rather than failing the whole
        # integration.
        return NULL
    return goid


def materialize(
    global_classes: Iterable[str],
    global_schema: GlobalSchema,
    catalog: MappingCatalog,
    exports_by_class: Mapping[str, Mapping[str, Iterable[LocalObject]]],
    stats: Optional[IntegrationStats] = None,
    columnar: bool = True,
) -> GlobalExtent:
    """Integrate several global classes into one :class:`GlobalExtent`.

    *columnar* picks the batched per-class merge (the default) or the
    historical per-object merge; the materialized extent is identical
    either way.
    """
    extent = GlobalExtent()
    for class_name in global_classes:
        integrated = integrate_class(
            class_name,
            global_schema,
            catalog,
            exports_by_class.get(class_name, {}),
            stats,
            columnar=columnar,
        )
        extent.install(class_name, integrated)
    return extent
