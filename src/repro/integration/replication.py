"""Maintenance of the replicated GOid mapping tables.

The paper states (Section 4.1) that "the GOid mapping table is
replicated at each site" and that "the mechanism used for managing the
replicated data in the distributed environment can be applied to
maintain the replicated GOid mapping tables" — and stops there.  This
module supplies that mechanism:

* :class:`ReplicatedCatalog` keeps one :class:`MappingCatalog` replica
  per site plus a primary copy at the global site;
* updates (a new entity, a new isomeric copy) are appended to a log at
  the primary and **propagated** to every site replica, either eagerly
  (per update) or in batches (:meth:`sync`);
* propagation cost is reported (update count, bytes at T_net per site)
  so maintenance traffic can be charged in simulations;
* :meth:`verify_consistent` proves that all replicas answer lookups
  identically — the property the strategies silently rely on when sites
  consult "their" mapping table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import MappingError
from repro.integration.mapping import MappingCatalog
from repro.objectdb.ids import GOid, LOid
from repro.sim.costs import CostModel, PAPER_COSTS


@dataclass(frozen=True)
class CatalogUpdate:
    """One logged mapping-table mutation: goid <- loid in global_class."""

    sequence: int
    global_class: str
    goid: GOid
    loid: LOid


@dataclass
class PropagationReport:
    """Cost of one propagation round."""

    updates: int = 0
    sites: int = 0
    bytes_per_site: int = 0
    seconds_network: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_site * self.sites


class ReplicatedCatalog:
    """Primary-copy replication of the GOid mapping catalog."""

    def __init__(
        self,
        site_names: Sequence[str],
        cost_model: CostModel = PAPER_COSTS,
        eager: bool = True,
    ) -> None:
        if not site_names:
            raise MappingError("a replicated catalog needs at least one site")
        self.cost_model = cost_model
        self.eager = eager
        self.primary = MappingCatalog()
        self._replicas: Dict[str, MappingCatalog] = {
            name: MappingCatalog() for name in site_names
        }
        self._log: List[CatalogUpdate] = []
        self._applied: Dict[str, int] = {name: 0 for name in site_names}

    # --- updates ------------------------------------------------------------

    def record(self, global_class: str, goid: GOid, loid: LOid) -> CatalogUpdate:
        """Register a mapping at the primary; propagate if eager."""
        self.primary.table(global_class).add(goid, loid)
        update = CatalogUpdate(
            sequence=len(self._log),
            global_class=global_class,
            goid=goid,
            loid=loid,
        )
        self._log.append(update)
        if self.eager:
            self.sync()
        return update

    def bulk_load(self, catalog: MappingCatalog) -> PropagationReport:
        """Install an existing catalog's entries (initial load)."""
        for table in catalog.tables():
            for goid, row in table.entries():
                for loid in row.values():
                    self.primary.table(table.global_class).add(goid, loid)
                    self._log.append(
                        CatalogUpdate(
                            sequence=len(self._log),
                            global_class=table.global_class,
                            goid=goid,
                            loid=loid,
                        )
                    )
        return self.sync()

    # --- propagation -----------------------------------------------------------

    def pending(self, site: str) -> int:
        """Updates logged but not yet applied at *site*."""
        if site not in self._applied:
            raise MappingError(f"unknown replica site {site!r}")
        return len(self._log) - self._applied[site]

    def sync(self, sites: Optional[Iterable[str]] = None) -> PropagationReport:
        """Apply all outstanding updates to the given (default all) sites."""
        report = PropagationReport()
        update_bytes = (
            self.cost_model.goid_bytes
            + self.cost_model.loid_bytes
            + self.cost_model.attribute_bytes  # class tag
        )
        targets = list(sites) if sites is not None else list(self._replicas)
        for site in targets:
            if site not in self._replicas:
                raise MappingError(f"unknown replica site {site!r}")
            start = self._applied[site]
            outstanding = self._log[start:]
            replica = self._replicas[site]
            for update in outstanding:
                replica.table(update.global_class).add(update.goid, update.loid)
            self._applied[site] = len(self._log)
            if outstanding:
                report.sites += 1
                report.updates += len(outstanding)
                report.bytes_per_site = max(
                    report.bytes_per_site, len(outstanding) * update_bytes
                )
        report.seconds_network = self.cost_model.net_time(report.total_bytes)
        return report

    # --- reads -------------------------------------------------------------------

    def replica(self, site: str) -> MappingCatalog:
        """The catalog replica a site consults (step BL_C2/PL_C1)."""
        try:
            return self._replicas[site]
        except KeyError:
            raise MappingError(f"unknown replica site {site!r}") from None

    @property
    def sites(self) -> Tuple[str, ...]:
        return tuple(self._replicas)

    @property
    def log_length(self) -> int:
        return len(self._log)

    # --- verification ----------------------------------------------------------------

    def verify_consistent(self) -> bool:
        """True when every *synced* replica answers like the primary."""
        primary_view = self._snapshot(self.primary)
        for site, replica in self._replicas.items():
            if self._applied[site] != len(self._log):
                return False
            if self._snapshot(replica) != primary_view:
                return False
        return True

    @staticmethod
    def _snapshot(catalog: MappingCatalog):
        return {
            table.global_class: dict(table.entries())
            for table in catalog.tables()
        }
