"""Federation consistency checking.

:func:`check_federation` audits a :class:`~repro.core.system
.DistributedSystem` for the invariants the query strategies silently
rely on, and returns a structured report instead of failing midway
through a query:

* **schema conformance** — every stored object matches its class
  definition (types of attribute values, declared attributes only);
* **referential integrity** — every non-null complex attribute points at
  an existing local object of the declared domain class;
* **catalog coverage** — every stored object of an integrated class has
  a GOid, and every catalog entry points at a stored object;
* **replica value consistency** — isomeric copies never disagree on a
  shared non-null attribute (the no-inconsistency assumption under which
  CA/BL/PL equivalence holds; violations are reported as warnings, not
  errors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ObjectStoreError
from repro.objectdb.ids import LOid
from repro.objectdb.values import MultiValue, is_null


@dataclass(frozen=True)
class Finding:
    """One audit finding."""

    severity: str  # "error" | "warning"
    category: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.category}: {self.message}"


@dataclass
class AuditReport:
    """Outcome of one federation audit."""

    findings: List[Finding] = field(default_factory=list)
    objects_audited: int = 0

    def add(self, severity: str, category: str, message: str) -> None:
        self.findings.append(Finding(severity, category, message))

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        return (
            f"{self.objects_audited} objects audited: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )


def check_federation(system, max_findings: int = 200) -> AuditReport:
    """Audit *system*; see module docstring for the checked invariants."""
    report = AuditReport()

    def room() -> bool:
        return len(report.findings) < max_findings

    # --- per-site checks ------------------------------------------------
    for db_name, db in system.databases.items():
        for class_name in db.schema.class_names:
            cdef = db.schema.cls(class_name)
            for loid, obj in db.extent(class_name).items():
                report.objects_audited += 1
                if not room():
                    return report
                # Schema conformance.
                try:
                    obj.validate_against(cdef)
                except ObjectStoreError as exc:
                    report.add("error", "schema", str(exc))
                # Referential integrity.
                for attr in cdef.complex_attributes():
                    value = obj.get(attr.name)
                    if is_null(value):
                        continue
                    refs = list(value) if isinstance(value, MultiValue) else [value]
                    for ref in refs:
                        if not isinstance(ref, LOid):
                            continue  # schema check reported already
                        target = db.get(ref)
                        if target is None:
                            report.add(
                                "error", "reference",
                                f"{loid}.{attr.name} dangles: {ref} not stored",
                            )
                        elif (
                            attr.domain is not None
                            and target.class_name != attr.domain
                        ):
                            report.add(
                                "error", "reference",
                                f"{loid}.{attr.name} points at "
                                f"{target.class_name}, declared {attr.domain}",
                            )

    # --- catalog coverage --------------------------------------------------
    for global_class in system.global_schema.class_names:
        table = system.catalog.table(global_class)
        stored = set()
        for db_name in system.global_schema.databases_of(global_class):
            local_cls = system.global_schema.constituent_class(
                db_name, global_class
            )
            if local_cls is None:
                continue
            for loid in system.db(db_name).extent(local_cls):
                stored.add(loid)
                if table.goid_of(loid) is None and room():
                    report.add(
                        "error", "catalog",
                        f"{loid} ({global_class}) has no GOid",
                    )
        for _goid, row in table.entries():
            for loid in row.values():
                if loid not in stored and room():
                    report.add(
                        "error", "catalog",
                        f"catalog maps {loid} ({global_class}) but no such "
                        "object is stored",
                    )

    # --- replica value consistency -------------------------------------------
    for global_class in system.global_schema.class_names:
        table = system.catalog.table(global_class)
        for goid, row in table.entries():
            if len(row) < 2 or not room():
                continue
            copies = [
                system.db(db).get(loid)
                for db, loid in row.items()
            ]
            copies = [c for c in copies if c is not None]
            attrs = set().union(*(c.values.keys() for c in copies))
            for attr_name in attrs:
                attr_defs = [
                    system.db(c.loid.db).schema.cls(c.class_name)
                    for c in copies
                ]
                is_complex = any(
                    d.has_attribute(attr_name) and d.attribute(attr_name).is_complex
                    for d in attr_defs
                )
                if is_complex:
                    continue  # references differ by construction (local LOids)
                non_null = {
                    c.get(attr_name)
                    for c in copies
                    if not is_null(c.get(attr_name))
                    and not isinstance(c.get(attr_name), MultiValue)
                }
                if len(non_null) > 1:
                    report.add(
                        "warning", "consistency",
                        f"{goid} ({global_class}): copies disagree on "
                        f"{attr_name!r}: {sorted(map(repr, non_null))}",
                    )
    return report
