"""GOid mapping tables: LOid <-> GOid correspondences per global class.

The federation assigns every real-world entity a GOid; the mapping table
of a global class records, per GOid, the LOid of its representative in
each component database that stores one (paper, Figure 5).  The table is
*replicated at each site* (Section 4.1), which is what lets a component
database look up assistant objects locally during the localized
strategies.

Hot-path caching: ``goid_of`` / ``loids_of`` / ``assistants_of`` are
called once per row per unsolved item by the localized strategies and
again by certification, so each table keeps a memoized index layer over
its base dictionaries.  The memos are invalidated wholesale on any
mutation (:meth:`MappingTable.add`, :meth:`MappingCatalog.register`) and
their traffic is reported through :class:`CacheStats`, which the engine
surfaces as ``cache.hit`` / ``cache.miss`` counters in the metrics
registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import MappingError
from repro.objectdb.ids import GOid, LOid


@dataclass
class CacheStats:
    """Hit/miss tallies of one memoized lookup layer."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits, misses=self.misses + other.misses
        )

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Traffic accumulated since the *earlier* snapshot."""
        return CacheStats(
            hits=self.hits - earlier.hits, misses=self.misses - earlier.misses
        )

    def snapshot(self) -> "CacheStats":
        return CacheStats(hits=self.hits, misses=self.misses)


@dataclass
class MappingTable:
    """The GOid mapping table of one global class."""

    global_class: str
    _by_goid: Dict[GOid, Dict[str, LOid]] = field(default_factory=dict)
    _by_loid: Dict[LOid, GOid] = field(default_factory=dict)
    #: Memoized derived lookups (cleared on every mutation).
    _iso_memo: Dict[LOid, Tuple[LOid, ...]] = field(
        default_factory=dict, repr=False
    )
    _loids_memo: Dict[GOid, Tuple[Tuple[str, LOid], ...]] = field(
        default_factory=dict, repr=False
    )
    stats: CacheStats = field(default_factory=CacheStats, repr=False)

    def add(self, goid: GOid, loid: LOid) -> None:
        """Record that *loid* is the representative of *goid* in its db.

        Raises:
            MappingError: if the database already maps this GOid to a
                different LOid, or the LOid is already mapped elsewhere.
        """
        existing = self._by_goid.get(goid, {}).get(loid.db)
        if existing is not None and existing != loid:
            raise MappingError(
                f"{self.global_class}: {goid} already maps to {existing} "
                f"in db {loid.db!r}, cannot remap to {loid}"
            )
        prior = self._by_loid.get(loid)
        if prior is not None and prior != goid:
            raise MappingError(
                f"{self.global_class}: {loid} already belongs to {prior}, "
                f"cannot also belong to {goid}"
            )
        # Validation done: mutate atomically and drop the stale memos.
        self._by_goid.setdefault(goid, {})[loid.db] = loid
        self._by_loid[loid] = goid
        self.invalidate()

    def invalidate(self) -> None:
        """Drop every memoized lookup (called on any mutation)."""
        self._iso_memo.clear()
        self._loids_memo.clear()

    def discard_db(self, db_name: str) -> int:
        """Remove every entry of one component database (site excision).

        Entities whose *only* copy lived at the departed site disappear
        from the table entirely; entities with surviving copies keep
        their GOid.  Returns the number of LOids removed.
        """
        removed = 0
        for goid in list(self._by_goid):
            row = self._by_goid[goid]
            loid = row.pop(db_name, None)
            if loid is not None:
                self._by_loid.pop(loid, None)
                removed += 1
            if not row:
                del self._by_goid[goid]
        if removed:
            self.invalidate()
        return removed

    # --- lookups ------------------------------------------------------------

    def goid_of(self, loid: LOid) -> Optional[GOid]:
        # The base index is already a single dict probe; count it so the
        # per-execution cache traffic reflects every mapping lookup.
        goid = self._by_loid.get(loid)
        if goid is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return goid

    def loids_of(self, goid: GOid) -> Dict[str, LOid]:
        """Per-database LOids of the entity (copy; may be empty)."""
        memo = self._loids_memo.get(goid)
        if memo is None:
            self.stats.misses += 1
            memo = tuple(self._by_goid.get(goid, {}).items())
            self._loids_memo[goid] = memo
        else:
            self.stats.hits += 1
        return dict(memo)

    def loid_in(self, goid: GOid, db_name: str) -> Optional[LOid]:
        return self._by_goid.get(goid, {}).get(db_name)

    def isomeric_objects(self, loid: LOid) -> List[LOid]:
        """The other LOids sharing *loid*'s GOid (paper: isomeric objects)."""
        memo = self._iso_memo.get(loid)
        if memo is None:
            self.stats.misses += 1
            goid = self._by_loid.get(loid)
            if goid is None:
                memo = ()
            else:
                memo = tuple(
                    other
                    for other in self._by_goid[goid].values()
                    if other != loid
                )
            self._iso_memo[loid] = memo
        else:
            self.stats.hits += 1
        return list(memo)

    def goids(self) -> Iterator[GOid]:
        return iter(self._by_goid)

    def __len__(self) -> int:
        return len(self._by_goid)

    def entries(self) -> Iterator[Tuple[GOid, Dict[str, LOid]]]:
        for goid, row in self._by_goid.items():
            yield goid, dict(row)


@dataclass
class MappingCatalog:
    """All mapping tables of the federation, keyed by global class.

    One catalog instance is conceptually replicated at every site; lookups
    performed "at a site" are charged to that site's CPU by the cost model
    (the data structure itself is shared in-process for the simulation).
    """

    _tables: Dict[str, MappingTable] = field(default_factory=dict)

    def table(self, global_class: str) -> MappingTable:
        """Fetch (creating on demand) the table of *global_class*."""
        if global_class not in self._tables:
            self._tables[global_class] = MappingTable(global_class=global_class)
        return self._tables[global_class]

    def register(self, table: MappingTable) -> None:
        """Install a pre-built table (replacing any existing one)."""
        table.invalidate()
        self._tables[table.global_class] = table

    def __contains__(self, global_class: str) -> bool:
        return global_class in self._tables

    def tables(self) -> Iterator[MappingTable]:
        return iter(self._tables.values())

    def discard_db(self, db_name: str) -> int:
        """Excise one site from every table; returns LOids removed."""
        return sum(t.discard_db(db_name) for t in self._tables.values())

    def goid_of(self, global_class: str, loid: LOid) -> Optional[GOid]:
        return self.table(global_class).goid_of(loid)

    def assistants_of(
        self, global_class: str, loid: LOid
    ) -> List[LOid]:
        """Isomeric objects of *loid* in the other component databases."""
        return self.table(global_class).isomeric_objects(loid)

    def cache_stats(self) -> CacheStats:
        """Aggregate cache traffic across every table's memo layer."""
        stats = CacheStats()
        for table in self._tables.values():
            stats = stats.merge(table.stats)
        return stats
