"""Schema integration: constructing the global object schema.

Classes with the same semantics across component databases are integrated
into one *global class*; the attributes of a global class are the set
union of its constituent classes' attributes (paper, Section 1).  An
attribute present in the global class but absent from a constituent class
is a *missing attribute* of that constituent — the root cause of maybe
results.

We assume attribute names have already been unified by the integration
front-end (the paper's cited mechanism [13] performs renaming during
integration); what this module resolves is structure:

* the union of attribute definitions, with complex-attribute domains
  rewritten from local class names to the global classes integrating them;
* conflicting kinds (primitive vs complex under one name) are rejected;
* attributes listed as *multi-valued* in the correspondence collect the
  values contributed by different component databases (the paper's
  future-work extension).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownClassError
from repro.integration.isomerism import ConstituentRef
from repro.objectdb.schema import (
    AttrKind,
    AttributeDef,
    ClassDef,
    ComponentSchema,
    Schema,
)


@dataclass(frozen=True)
class ClassCorrespondence:
    """Declares which constituent classes integrate into one global class.

    Attributes:
        global_name: name of the global class to construct.
        constituents: the (db, class) pairs being integrated.
        key_attribute: attribute used to match isomeric objects across
            databases (substrate for the paper's reference [5]).
        multi_valued_attributes: global attributes whose values are merged
            across databases into value sets (extension).
    """

    global_name: str
    constituents: Tuple[ConstituentRef, ...]
    key_attribute: str
    multi_valued_attributes: FrozenSet[str] = frozenset()

    @classmethod
    def of(
        cls,
        global_name: str,
        constituents: Sequence[Tuple[str, str]],
        key_attribute: str,
        multi_valued_attributes: Sequence[str] = (),
    ) -> "ClassCorrespondence":
        return cls(
            global_name=global_name,
            constituents=tuple(
                ConstituentRef(db_name=db, class_name=cn)
                for db, cn in constituents
            ),
            key_attribute=key_attribute,
            multi_valued_attributes=frozenset(multi_valued_attributes),
        )


class GlobalSchema:
    """The integrated global schema plus the constituent bookkeeping.

    Besides behaving as a :class:`~repro.objectdb.schema.Schema` (for path
    resolution and query validation), it answers the questions the query
    decomposer needs:

    * which local class is the constituent of a global class at a site;
    * which global attributes are *missing* for that constituent.
    """

    def __init__(
        self,
        schema: Schema,
        correspondences: Mapping[str, ClassCorrespondence],
        missing: Mapping[Tuple[str, str], Tuple[str, ...]],
    ) -> None:
        self.schema = schema
        self._correspondences = dict(correspondences)
        self._missing = dict(missing)
        # (db, local class) -> global class
        self._global_of: Dict[Tuple[str, str], str] = {}
        # (db, global class) -> local class
        self._constituent_of: Dict[Tuple[str, str], str] = {}
        for corr in self._correspondences.values():
            for ref in corr.constituents:
                self._global_of[(ref.db_name, ref.class_name)] = corr.global_name
                self._constituent_of[(ref.db_name, corr.global_name)] = ref.class_name

    # --- Schema facade -------------------------------------------------------

    def __contains__(self, class_name: str) -> bool:
        return class_name in self.schema

    def cls(self, class_name: str) -> ClassDef:
        return self.schema.cls(class_name)

    @property
    def class_names(self) -> List[str]:
        return self.schema.class_names

    # --- constituent bookkeeping ----------------------------------------------

    def correspondence(self, global_class: str) -> ClassCorrespondence:
        try:
            return self._correspondences[global_class]
        except KeyError:
            raise UnknownClassError(global_class, "global schema") from None

    def constituents(self, global_class: str) -> Tuple[ConstituentRef, ...]:
        return self.correspondence(global_class).constituents

    def databases_of(self, global_class: str) -> Tuple[str, ...]:
        """Databases holding a constituent of *global_class* (stable order)."""
        seen: List[str] = []
        for ref in self.constituents(global_class):
            if ref.db_name not in seen:
                seen.append(ref.db_name)
        return tuple(seen)

    def constituent_class(self, db_name: str, global_class: str) -> Optional[str]:
        """The local class integrating into *global_class* at *db_name*."""
        return self._constituent_of.get((db_name, global_class))

    def global_class_of(self, db_name: str, local_class: str) -> Optional[str]:
        return self._global_of.get((db_name, local_class))

    def missing_attribute_names(
        self, db_name: str, global_class: str
    ) -> Tuple[str, ...]:
        """Global attributes the constituent at *db_name* does not define.

        Empty when the site has no constituent of the class at all (the
        class is entirely absent there, handled separately by the
        decomposer).
        """
        return self._missing.get((db_name, global_class), ())

    def key_attribute(self, global_class: str) -> str:
        return self.correspondence(global_class).key_attribute


def integrate_schemas(
    component_schemas: Mapping[str, ComponentSchema],
    correspondences: Sequence[ClassCorrespondence],
) -> GlobalSchema:
    """Construct the global schema from component schemas.

    Raises:
        SchemaError: on undefined constituents, kind conflicts, or complex
            attributes whose domain class is not integrated anywhere.
    """
    # Map each (db, local class) to its global class, needed to rewrite
    # complex-attribute domains.
    global_of: Dict[Tuple[str, str], str] = {}
    by_name: Dict[str, ClassCorrespondence] = {}
    for corr in correspondences:
        if corr.global_name in by_name:
            raise SchemaError(
                f"duplicate correspondence for global class "
                f"{corr.global_name!r}"
            )
        by_name[corr.global_name] = corr
        for ref in corr.constituents:
            if ref.db_name not in component_schemas:
                raise SchemaError(
                    f"correspondence {corr.global_name!r} references "
                    f"unknown database {ref.db_name!r}"
                )
            if ref.class_name not in component_schemas[ref.db_name]:
                raise SchemaError(
                    f"correspondence {corr.global_name!r} references "
                    f"undefined class {ref.class_name!r} in {ref.db_name!r}"
                )
            key = (ref.db_name, ref.class_name)
            if key in global_of:
                raise SchemaError(
                    f"class {ref.class_name!r} of {ref.db_name!r} is a "
                    f"constituent of two global classes"
                )
            global_of[key] = corr.global_name

    global_classes: List[ClassDef] = []
    missing: Dict[Tuple[str, str], Tuple[str, ...]] = {}
    for corr in by_name.values():
        merged: Dict[str, AttributeDef] = {}
        for ref in corr.constituents:
            cdef = component_schemas[ref.db_name].cls(ref.class_name)
            for attr in cdef.attributes:
                lifted = _lift_attribute(attr, ref, global_of, corr)
                existing = merged.get(attr.name)
                if existing is None:
                    merged[attr.name] = lifted
                elif existing != lifted:
                    merged[attr.name] = _reconcile(existing, lifted, corr)
        global_classes.append(ClassDef.of(corr.global_name, merged.values()))
        for ref in corr.constituents:
            cdef = component_schemas[ref.db_name].cls(ref.class_name)
            missing[(ref.db_name, corr.global_name)] = tuple(
                name for name in merged if not cdef.has_attribute(name)
            )

    schema = Schema(global_classes)
    return GlobalSchema(schema=schema, correspondences=by_name, missing=missing)


def _lift_attribute(
    attr: AttributeDef,
    ref: ConstituentRef,
    global_of: Mapping[Tuple[str, str], str],
    corr: ClassCorrespondence,
) -> AttributeDef:
    """Rewrite a constituent attribute into global terms."""
    multi = attr.multi_valued or attr.name in corr.multi_valued_attributes
    if not attr.is_complex:
        return AttributeDef(
            name=attr.name, kind=AttrKind.PRIMITIVE, multi_valued=multi
        )
    domain_global = global_of.get((ref.db_name, attr.domain))  # type: ignore[arg-type]
    if domain_global is None:
        raise SchemaError(
            f"complex attribute {ref.class_name}.{attr.name} of "
            f"{ref.db_name!r} references class {attr.domain!r} which is "
            "not integrated into any global class"
        )
    return AttributeDef(
        name=attr.name,
        kind=AttrKind.COMPLEX,
        domain=domain_global,
        multi_valued=multi,
    )


def _reconcile(
    existing: AttributeDef, incoming: AttributeDef, corr: ClassCorrespondence
) -> AttributeDef:
    """Merge two lifted definitions of the same attribute name."""
    if existing.kind is not incoming.kind:
        raise SchemaError(
            f"global class {corr.global_name!r}: attribute "
            f"{existing.name!r} is primitive in one constituent and "
            "complex in another"
        )
    if existing.is_complex and existing.domain != incoming.domain:
        raise SchemaError(
            f"global class {corr.global_name!r}: attribute "
            f"{existing.name!r} references different global domains "
            f"({existing.domain!r} vs {incoming.domain!r})"
        )
    multi = existing.multi_valued or incoming.multi_valued
    return AttributeDef(
        name=existing.name,
        kind=existing.kind,
        domain=existing.domain,
        multi_valued=multi,
    )
