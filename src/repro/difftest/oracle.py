"""The strategy oracle: every invariant one fuzz case must satisfy.

The oracle owns no opinion about *what* the right answer is — CA's
fault-free answer anchors every comparison, exactly as the paper's
Section 4 treats CA as the reference the localized strategies must
reproduce.  What it checks:

``equivalence``
    Every registered strategy's fault-free answer strictly equals CA's
    (:func:`repro.core.results.same_answers`: kinds, projected bindings,
    unsolved-predicate sets).
``batching``
    For strategies whose execution batching can change at all
    (:attr:`Strategy.affected_by_batching`), the unbatched answer
    strictly equals the batched one.
``columnar``
    For strategies that touch a columnar kernel at all
    (:attr:`Strategy.affected_by_columnar`), flipping the columnar
    extent path (batch 3VL predicate kernels, batched assistant
    checks, batched outerjoin merge) and re-running yields an answer
    strictly equal to the other path's — the transparency contract.
``planner``
    For the :attr:`StrategyOracle.PLANNER_MATRIX` pairs, running with
    an adaptive planner mode (constraint pruning, trace feedback, or
    both) yields an answer strictly equal to ``static``'s — the
    soundness contract of ``repro.planner``.
``determinism``
    Rebuilding the case from its recipe and re-executing yields a
    byte-identical answer export.
``fault-equivalence`` / ``fault-soundness``
    Under the case's fault plan, executions that stayed complete must
    strictly equal the fault-free answer; degraded executions may only
    certify a subset of it (degradation never adds certainty).
``failover-*``
    Replica failover must be sound and monotone: the failover-enabled
    run certifies no entity the fault-free baseline does not
    (``failover-soundness``) and loses none the eager skip-and-demote
    run kept (``failover-monotonic`` — fuzz federations hold consistent
    copies, so extra verdicts only add certainty).  A run reporting
    ``fully_recovered`` must equal the fault-free answer byte for byte
    (``failover-recovery``), and hedged dispatch must never change the
    answer at all (``hedge-invariance``).
``repair-soundness`` / ``repair-monotonic`` (opt-in: ``recertify=True``)
    Every degraded fault execution, handed to ``engine.recertify``
    against the healed federation, must repair to that strategy's own
    fault-free answer byte for byte — through condition discharge
    alone, never a re-execution — and promotion must be monotone (no
    certified entity is demoted by repair).
``monotonicity``
    After registering one extra consistent assistant copy, no certain
    result is demoted, no previously-eliminated entity is certified,
    and the strategies still strictly agree.
``evolution-*``
    On cases with churn (``evolve`` kinds), each event's propagation
    window is stepped open and closed on a fresh federation.  A query
    executed *during* the window must satisfy the flux consistency
    contract — equal to the pre-epoch serial baseline, equal to the
    post-epoch one, or a certified subset of both (``evolution-flux``)
    — and carry the window's label in ``Availability.epochs_straddled``
    (``evolution-straddle``).  After every window closes, the
    strategies must still strictly agree (``evolution-agreement``).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.engine import GlobalQueryEngine
from repro.core.results import (
    ResultSet,
    _answer_key,
    certified_subset,
    same_answers,
)
from repro.core.strategies import DEFAULT_REGISTRY
from repro.core.system import DistributedSystem
from repro.difftest.cases import FuzzCase
from repro.objectdb.ids import GOid
from repro.objectdb.values import is_null

#: Policy used for the fault suite (degrade to partial answers).
FAULT_POLICY = "degrade"


@dataclass(frozen=True)
class Violation:
    """One broken invariant on one case."""

    invariant: str
    label: str
    detail: str
    case: FuzzCase

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.label}: {self.detail}"


def answer_digest(results: ResultSet) -> str:
    """Stable content hash of an answer (first 12 hex chars)."""
    payload = json.dumps(results.to_dicts(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def case_digest(case: FuzzCase) -> str:
    """Content hash of a case's reference (CA) answer."""
    built = case.build()
    session = GlobalQueryEngine(built.system).session(name="difftest")
    return answer_digest(session.execute(built.query, "CA").results)


def _first_difference(left: ResultSet, right: ResultSet) -> str:
    """A one-line description of why two answers are not equal."""
    if left.targets != right.targets:
        return (
            f"target lists differ: {[str(t) for t in left.targets]} vs "
            f"{[str(t) for t in right.targets]}"
        )
    lk, rk = _answer_key(left), _answer_key(right)
    only_left = sorted(set(lk) - set(rk), key=lambda g: g.value)
    only_right = sorted(set(rk) - set(lk), key=lambda g: g.value)
    if only_left:
        return f"{len(only_left)} entities only on the left, e.g. {only_left[0]}"
    if only_right:
        return f"{len(only_right)} entities only on the right, e.g. {only_right[0]}"
    for goid in sorted(lk, key=lambda g: g.value):
        if lk[goid] != rk[goid]:
            return f"entity {goid} differs: {lk[goid]} vs {rk[goid]}"
    return "answers differ"


class StrategyOracle:
    """Runs every registered strategy on a case and checks invariants."""

    def __init__(
        self,
        registry=DEFAULT_REGISTRY,
        columnar: Optional[bool] = None,
        planner: Optional[str] = None,
        recertify: bool = False,
    ) -> None:
        self.registry = registry
        #: Base execution path for every invariant run: ``None`` keeps
        #: the engine default (columnar on), ``False`` forces the row
        #: path (the fuzz CLI's ``--no-columnar``).  The ``columnar``
        #: invariant always compares against the *opposite* path, so
        #: on/off equivalence is checked either way.
        self.columnar = columnar
        #: Base planner mode for every invariant run: ``None`` keeps the
        #: engine default (``static``); the fuzz CLI's ``--planner``
        #: flag pins another mode, so the whole invariant suite also
        #: runs with pruning/feedback live.  The ``planner`` invariant
        #: below always compares ``static`` against the adaptive modes
        #: regardless of this base.
        self.planner = planner
        #: With ``recertify``, every degraded fault execution is handed
        #: to ``engine.recertify`` against the healed federation and the
        #: repaired answer must be byte-identical to that strategy's own
        #: fault-free baseline (``repair-soundness``), with monotone
        #: promotion (``repair-monotonic``).
        self.recertify = recertify

    @property
    def strategy_names(self) -> List[str]:
        return list(self.registry.names())

    # --- entry point -------------------------------------------------------

    def check(self, case: FuzzCase) -> List[Violation]:
        """All invariant violations of *case* (empty list = clean)."""
        violations: List[Violation] = []
        built = case.build()
        engine = GlobalQueryEngine(built.system)
        engine.ensure_signatures()
        # One session per case: every oracle execution flows through it
        # with explicit ExecutionOptions (never the deprecated kwargs).
        session = engine.session(name=f"difftest:{case.label}")
        if self.columnar is not None:
            session.options = session.options.with_(columnar=self.columnar)
        if self.planner is not None:
            session.options = session.options.with_(planner=self.planner)

        # Fault-free answers, one per strategy; CA anchors comparisons.
        answers: Dict[str, ResultSet] = {}
        for name in self.strategy_names:
            answers[name] = session.execute(built.query, name).results
        baseline = answers["CA"]
        for name, results in answers.items():
            if name != "CA" and not same_answers(baseline, results):
                violations.append(Violation(
                    "equivalence", case.label,
                    f"CA vs {name}: {_first_difference(baseline, results)}",
                    case,
                ))

        violations.extend(self._check_batching(case, session, built, answers))
        violations.extend(self._check_columnar(case, session, built, answers))
        violations.extend(self._check_planner(case, session, built, answers))
        violations.extend(self._check_determinism(case, baseline))
        if built.fault_plan is not None:
            violations.extend(
                self._check_faults(case, session, built, baseline)
            )
            violations.extend(
                self._check_failover(case, session, built, baseline)
            )
            if self.recertify:
                violations.extend(
                    self._check_repair(case, session, built, answers)
                )
        if case.mutate:
            violations.extend(
                self._check_monotonicity(case, session, built, answers)
            )
        if built.evolution is not None:
            # Last: the suite mutates its own fresh federation copy.
            violations.extend(self._check_evolution(case))
        return violations

    # --- invariants --------------------------------------------------------

    def _check_batching(self, case, session, built, answers) -> List[Violation]:
        """Flipping batch_checks must never change an answer."""
        violations = []
        unbatched_options = session.options.with_(batch_checks=False)
        for name in self.strategy_names:
            if not self.registry.create(name).affected_by_batching:
                continue
            unbatched = session.execute(
                built.query, name, options=unbatched_options
            ).results
            if not same_answers(answers[name], unbatched):
                violations.append(Violation(
                    "batching", case.label,
                    f"{name}: batched vs unbatched: "
                    f"{_first_difference(answers[name], unbatched)}",
                    case,
                ))
        return violations

    def _check_columnar(self, case, session, built, answers) -> List[Violation]:
        """Flipping the columnar execution path must never change an answer.

        The transparency contract of the columnar extent kernels: batch
        3VL predicate evaluation, batched assistant checks and the
        batched outerjoin merge must reproduce the per-object row path
        byte for byte.  Every strategy that touches a columnar kernel
        (:attr:`Strategy.affected_by_columnar`) is re-run on the
        opposite path and compared strictly against its base answer.
        """
        violations = []
        base = session.options.columnar
        flipped_options = session.options.with_(columnar=not base)
        for name in self.strategy_names:
            if not self.registry.create(name).affected_by_columnar:
                continue
            other = session.execute(
                built.query, name, options=flipped_options
            ).results
            if not same_answers(answers[name], other):
                violations.append(Violation(
                    "columnar", case.label,
                    f"{name}: columnar={base} vs columnar={not base}: "
                    f"{_first_difference(answers[name], other)}",
                    case,
                ))
        return violations

    #: (strategy, planner mode) pairs exercised by the planner invariant.
    #: BL and PL cover both localized phase orders under constraint
    #: pruning; AUTO covers the trace-fed pick; ``full`` composes both.
    #: CA opts out via ``affected_by_planner = False`` (nothing to
    #: prune, no pick to steer), and the signature variants share BL/PL's
    #: pruning seam, so the matrix stays at six extra executions a case.
    PLANNER_MATRIX = (
        ("BL", "constraints"),
        ("BL", "full"),
        ("PL", "constraints"),
        ("PL", "full"),
        ("AUTO", "feedback"),
        ("AUTO", "full"),
    )

    def _check_planner(self, case, session, built, answers) -> List[Violation]:
        """Every planner mode must be answer-identical to ``static``.

        The soundness contract of the constraint catalog (a prune fires
        only when the static path provably produces the same answer) and
        of trace feedback (it only reorders AUTO's prediction ranking,
        never touches evaluation).  Each matrix entry re-runs the
        strategy with the mode pinned and compares strictly against the
        strategy's base (static) answer.
        """
        violations = []
        static_options = session.options.with_(planner="static")
        for name, mode in self.PLANNER_MATRIX:
            if name not in self.strategy_names:
                continue
            if not self.registry.create(name).affected_by_planner:
                continue
            base = answers[name]
            if session.options.planner != "static":
                base = session.execute(
                    built.query, name, options=static_options
                ).results
            adaptive = session.execute(
                built.query, name,
                options=session.options.with_(planner=mode),
            ).results
            if not same_answers(base, adaptive):
                violations.append(Violation(
                    "planner", case.label,
                    f"{name}: planner=static vs planner={mode}: "
                    f"{_first_difference(base, adaptive)}",
                    case,
                ))
        return violations

    def _check_determinism(self, case, baseline) -> List[Violation]:
        """The recipe must rebuild to a byte-identical answer."""
        rebuilt = case.build()
        session = GlobalQueryEngine(rebuilt.system).session(name="rebuild")
        again = session.execute(rebuilt.query, "CA").results
        left, right = answer_digest(baseline), answer_digest(again)
        if left != right:
            return [Violation(
                "determinism", case.label,
                f"rebuild changed the answer: {left} vs {right}",
                case,
            )]
        return []

    def _check_faults(self, case, session, built, baseline) -> List[Violation]:
        """Complete runs equal the baseline; degraded ones under-certify."""
        violations = []
        fault_options = session.options.with_(
            fault_plan=built.fault_plan,
            policy=FAULT_POLICY,
            fault_seed=case.fault_seed,
        )
        for name in self.strategy_names:
            report = session.execute(
                built.query, name, options=fault_options
            )
            results = report.results
            if report.availability.complete:
                if not same_answers(baseline, results):
                    violations.append(Violation(
                        "fault-equivalence", case.label,
                        f"{name} stayed complete under the plan but "
                        f"changed its answer: "
                        f"{_first_difference(baseline, results)}",
                        case,
                    ))
            elif not certified_subset(results, baseline):
                extra = sorted(
                    {r.goid for r in results.certain}
                    - {r.goid for r in baseline.certain},
                    key=lambda g: g.value,
                )
                violations.append(Violation(
                    "fault-soundness", case.label,
                    f"{name} (degraded) certified {len(extra)} entities "
                    f"the complete answer does not, e.g. {extra[0]}",
                    case,
                ))
        return violations

    #: Strategies exercised by the failover invariants.  Failover lives
    #: in the shared localized machinery; BL and PL cover both phase
    #: orders without re-running the (expensive) signature variants.
    FAILOVER_STRATEGIES = ("BL", "PL")

    def _check_failover(self, case, session, built, baseline) -> List[Violation]:
        """Failover is sound, monotone, recovery-exact and hedge-stable."""
        violations = []
        fault_options = session.options.with_(
            fault_plan=built.fault_plan,
            policy=FAULT_POLICY,
            fault_seed=case.fault_seed,
        )
        for name in self.FAILOVER_STRATEGIES:
            if name not in self.strategy_names:
                continue
            on = session.execute(
                built.query, name,
                options=fault_options.with_(failover=True),
            )
            off = session.execute(
                built.query, name,
                options=fault_options.with_(failover=False),
            )
            if not certified_subset(on.results, baseline):
                extra = sorted(
                    {r.goid for r in on.results.certain}
                    - {r.goid for r in baseline.certain},
                    key=lambda g: g.value,
                )
                violations.append(Violation(
                    "failover-soundness", case.label,
                    f"{name} with failover certified {len(extra)} "
                    f"entities the fault-free answer does not, "
                    f"e.g. {extra[0]}",
                    case,
                ))
            if not certified_subset(off.results, on.results):
                lost = sorted(
                    {r.goid for r in off.results.certain}
                    - {r.goid for r in on.results.certain},
                    key=lambda g: g.value,
                )
                violations.append(Violation(
                    "failover-monotonic", case.label,
                    f"{name} with failover lost {len(lost)} certain "
                    f"result(s) the eager path kept, e.g. {lost[0]}",
                    case,
                ))
            if on.availability.fully_recovered and not same_answers(
                baseline, on.results
            ):
                violations.append(Violation(
                    "failover-recovery", case.label,
                    f"{name} claimed full recovery but differs from the "
                    f"fault-free answer: "
                    f"{_first_difference(baseline, on.results)}",
                    case,
                ))
            hedged = session.execute(
                built.query, name,
                options=fault_options.with_(
                    failover=True, policy=f"{FAULT_POLICY}:hedge=0.05"
                ),
            )
            if not same_answers(on.results, hedged.results):
                violations.append(Violation(
                    "hedge-invariance", case.label,
                    f"{name}: hedging changed the answer: "
                    f"{_first_difference(on.results, hedged.results)}",
                    case,
                ))
        return violations

    #: Strategies exercised by the repair invariants — the global path
    #: (CA: re-export + re-materialize) and both localized phase orders
    #: (BL/PL: healed-site re-query, skipped-check re-dispatch, chase
    #: re-seed).  The signature variants share the localized repair seam.
    REPAIR_STRATEGIES = ("CA", "BL", "PL")

    def _check_repair(self, case, session, built, answers) -> List[Violation]:
        """Healed degraded answers repair to the fault-free baseline.

        Each strategy runs under the case's fault plan; every execution
        that degraded hands its report to ``recertify`` against the
        *healed* federation (no fault plan — every site answers).
        Repair must reconstruct the strategy's own fault-free answer
        byte for byte through condition discharge alone — no full
        re-execution happens — and promotion must be monotone: no
        entity the degraded run certified loses its certainty.
        """
        violations = []
        fault_options = session.options.with_(
            fault_plan=built.fault_plan,
            policy=FAULT_POLICY,
            fault_seed=case.fault_seed,
        )
        for name in self.REPAIR_STRATEGIES:
            if name not in self.strategy_names:
                continue
            report = session.execute(
                built.query, name, options=fault_options
            )
            if report.availability.complete:
                continue
            try:
                repaired = session.recertify(report)
            except Exception as exc:  # noqa: BLE001 - any raise is a finding
                violations.append(Violation(
                    "repair-soundness", case.label,
                    f"{name}: recertify raised "
                    f"{type(exc).__name__}: {exc}",
                    case,
                ))
                continue
            left = answer_digest(answers[name])
            right = answer_digest(repaired.results)
            if left != right:
                violations.append(Violation(
                    "repair-soundness", case.label,
                    f"{name}: repaired answer differs from the "
                    f"fault-free baseline ({left} vs {right}): "
                    f"{_first_difference(answers[name], repaired.results)}",
                    case,
                ))
            lost = sorted(
                {r.goid for r in report.results.certain}
                - {r.goid for r in repaired.results.certain},
                key=lambda g: g.value,
            )
            if lost:
                violations.append(Violation(
                    "repair-monotonic", case.label,
                    f"{name}: repair demoted {len(lost)} certain "
                    f"result(s), e.g. {lost[0]}",
                    case,
                ))
        return violations

    def _check_monotonicity(self, case, session, built, answers) -> List[Violation]:
        """One extra consistent copy must only ever *add* certainty."""
        baseline = answers["CA"]
        goid = _register_assistant_copy(
            built.system, built.query.range_class, baseline,
            random.Random(f"difftest:mutate:{case.seed}"),
        )
        if goid is None:
            return []  # every entity already has copies everywhere
        after: Dict[str, ResultSet] = {}
        for name in self.strategy_names:
            after[name] = session.execute(built.query, name).results
        violations = []
        for name, results in after.items():
            if name != "CA" and not same_answers(after["CA"], results):
                violations.append(Violation(
                    "monotonicity", case.label,
                    f"after adding a copy of {goid}, CA vs {name}: "
                    f"{_first_difference(after['CA'], results)}",
                    case,
                ))
        certain_before = {r.goid for r in baseline.certain}
        maybe_before = {r.goid for r in baseline.maybe}
        certain_after = {r.goid for r in after["CA"].certain}
        demoted = sorted(
            certain_before - certain_after, key=lambda g: g.value
        )
        if demoted:
            violations.append(Violation(
                "monotonicity", case.label,
                f"adding a copy of {goid} demoted {len(demoted)} certain "
                f"result(s), e.g. {demoted[0]}",
                case,
            ))
        resurrected = sorted(
            certain_after - (certain_before | maybe_before),
            key=lambda g: g.value,
        )
        if resurrected:
            violations.append(Violation(
                "monotonicity", case.label,
                f"adding a copy of {goid} certified {len(resurrected)} "
                f"previously-eliminated entit(ies), e.g. {resurrected[0]}",
                case,
            ))
        return violations

    #: Strategies exercised by the evolution invariants.  The flux
    #: contract lives in the engine, shared by every strategy; CA, BL
    #: and PL cover the global and both localized phase orders.
    EVOLUTION_STRATEGIES = ("CA", "BL", "PL")

    def _check_evolution(self, case) -> List[Violation]:
        """Every propagation window honors the flux consistency contract.

        Runs on a *fresh* build (the controller mutates the federation
        in place).  For each event: snapshot pre-epoch answers, open the
        window, execute in flux, close it, snapshot post-epoch answers.
        The flux answer must equal pre, equal post, or certify a subset
        of both; it must carry the window label in
        ``epochs_straddled``; and the strategies must agree post-close.
        """
        from repro.evolution.controller import EvolutionController

        fresh = case.build()
        if fresh.evolution is None:  # pragma: no cover - caller checked
            return []
        controller = EvolutionController(fresh.system, fresh.evolution)
        session = GlobalQueryEngine(fresh.system).session(
            name=f"difftest-evo:{case.label}"
        )
        names = [
            n for n in self.EVOLUTION_STRATEGIES if n in self.strategy_names
        ]
        violations: List[Violation] = []
        while not controller.done:
            pre = {
                name: session.execute(fresh.query, name).results
                for name in names
            }
            opened = controller.step()
            if opened.phase != "open":  # pragma: no cover - paired plans
                continue
            label = opened.event.label
            flux_reports = {
                name: session.execute(fresh.query, name) for name in names
            }
            closed = controller.step()
            # safe_plan spaces events so windows never overlap; without
            # that guarantee a true post-epoch baseline is unavailable.
            paired = (
                closed.phase == "close" and closed.event.label == label
            )
            for name in names:
                straddled = flux_reports[name].availability.epochs_straddled
                if label not in straddled:
                    violations.append(Violation(
                        "evolution-straddle", case.label,
                        f"{name} executed inside {label}'s window but "
                        f"annotated epochs_straddled={list(straddled)}",
                        case,
                    ))
            if not paired:  # pragma: no cover - paired plans
                continue
            post = {
                name: session.execute(fresh.query, name).results
                for name in names
            }
            for name in names:
                flux = flux_reports[name].results
                sound = (
                    same_answers(flux, pre[name])
                    or same_answers(flux, post[name])
                    or (
                        certified_subset(flux, pre[name])
                        and certified_subset(flux, post[name])
                    )
                )
                if not sound:
                    violations.append(Violation(
                        "evolution-flux", case.label,
                        f"{name} inside {label}'s window matches neither "
                        f"epoch: vs pre "
                        f"{_first_difference(flux, pre[name])}; vs post "
                        f"{_first_difference(flux, post[name])}",
                        case,
                    ))
            for name in names:
                if name != "CA" and not same_answers(
                    post["CA"], post[name]
                ):
                    violations.append(Violation(
                        "evolution-agreement", case.label,
                        f"after {label} closed, CA vs {name}: "
                        f"{_first_difference(post['CA'], post[name])}",
                        case,
                    ))
        return violations


def _register_assistant_copy(
    system: DistributedSystem,
    range_class: str,
    baseline: ResultSet,
    rng: random.Random,
) -> Optional[GOid]:
    """Clone one root entity to a site it is absent from.

    The new copy carries the entity's merged (consistent) values —
    complex references are handed over as GOids, which
    :meth:`DistributedSystem.register_entity` translates to the target
    site's local copies.  Prefers entities that are maybe results, where
    the extra assistant can actually move the answer.
    """
    table = system.catalog.table(range_class)
    all_dbs = set(system.global_schema.databases_of(range_class))
    maybe_goids = {r.goid for r in baseline.maybe}

    def candidates(pool):
        out = []
        for goid in sorted(pool, key=lambda g: g.value):
            placements = table.loids_of(goid)
            if placements and set(placements) != all_dbs:
                out.append(goid)
        return out

    pool = candidates(maybe_goids) or candidates(table.goids())
    if not pool:
        return None
    goid = rng.choice(pool)
    placements = table.loids_of(goid)
    target_db = rng.choice(sorted(all_dbs - set(placements)))

    # Merge the existing copies' values (first non-null in constituent
    # order — the outerjoin policy), translating references to GOids.
    gdef = system.global_schema.cls(range_class)
    merged: Dict[str, object] = {}
    for attr in gdef.attributes:
        for db_name in system.global_schema.databases_of(range_class):
            loid = placements.get(db_name)
            if loid is None:
                continue
            obj = system.db(db_name).get(loid)
            if obj is None:
                continue
            value = obj.get(attr.name)
            if is_null(value):
                continue
            if attr.is_complex and attr.domain is not None:
                ref_goid = system.catalog.table(attr.domain).goid_of(value)
                if ref_goid is None:
                    continue
                value = ref_goid
            merged[attr.name] = value
            break
    system.register_entity(range_class, {target_db: merged}, goid=goid)
    return goid
