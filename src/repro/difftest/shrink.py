"""Greedy case minimization: strip a failing recipe to its essence.

The shrinker never touches federation objects — it edits the *recipe*
(:class:`FuzzCase`) and asks the caller's ``is_failing`` predicate
whether the regenerated case still fails.  Each pass tries a fixed
sequence of simplifications (drop the mutation, drop evolution events —
all of them, then one at a time — drop the faults, fewer sites, shorter
class chains, fewer objects, simpler targets) and keeps
an edit only if the failure survives it; passes repeat until a
fixpoint.  Because the predicate rebuilds from the recipe, a shrunk
case committed to ``tests/cases/`` replays the exact minimal federation
that exhibited the bug.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

from repro.difftest.cases import FuzzCase
from repro.errors import ReproError

#: Smaller scales the shrinker is allowed to try, largest first.
SHRINK_SCALES = (0.015, 0.01, 0.005)


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Simplified variants of *case*, most aggressive first per axis."""

    def replaced(**changes) -> Iterator[FuzzCase]:
        try:
            yield dataclasses.replace(case, **changes)
        except ReproError:
            return

    if case.mutate:
        yield from replaced(mutate=False)
    if case.evolve:
        yield from replaced(evolve="")
        kinds = case.evolve.split(",")
        if len(kinds) > 1:
            for index in range(len(kinds)):
                remaining = kinds[:index] + kinds[index + 1:]
                yield from replaced(evolve=",".join(remaining))
    if case.fault_spec:
        yield from replaced(fault_spec="", fault_seed=0)
    if case.multi_valued_targets:
        yield from replaced(multi_valued_targets=False)
    if case.local_pred_attr_bias is not None:
        yield from replaced(local_pred_attr_bias=None)
    if case.n_dbs > 2:
        yield from replaced(n_dbs=case.n_dbs - 1)
    if case.n_classes_max > 1:
        yield from replaced(
            n_classes_min=1, n_classes_max=case.n_classes_max - 1
        )
    for scale in SHRINK_SCALES:
        if scale < case.scale:
            yield from replaced(scale=scale)


def shrink_case(
    case: FuzzCase,
    is_failing: Callable[[FuzzCase], bool],
    max_attempts: int = 64,
) -> FuzzCase:
    """Smallest variant of *case* for which ``is_failing`` stays true.

    ``is_failing`` is consulted at most *max_attempts* times; the best
    case found so far is returned when the budget runs out.  *case*
    itself is assumed failing and is never re-checked.
    """
    current = case
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            if is_failing(candidate):
                current = candidate
                progress = True
                break  # restart candidate generation from the new case
    return current
