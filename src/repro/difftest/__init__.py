"""Differential correctness harness: fuzzer, oracle, shrinker, runner.

The paper's central correctness claim is that CA, BL and PL are
*answer-equivalent* — they differ only in cost (Section 4).  This
package turns that claim into an executable property: a seeded
:class:`FederationFuzzer` generates random-but-deterministic federations
and conjunctive queries from the Table 2 parameter space, and a
:class:`StrategyOracle` runs every registered strategy on each case,
asserting

* strict answer equality (same entities, same kinds, same projected
  bindings, same unsolved-predicate sets — :func:`repro.core.results
  .same_answers`);
* batching transparency (``batch_checks`` never changes an answer);
* execution determinism (same seed, byte-identical export);
* fault soundness (complete runs under a plan equal the fault-free
  answer; degraded runs certify only a subset of it);
* monotonicity (adding an assistant copy never demotes a certain
  result, and never certifies an entity the pre-mutation answer had
  eliminated).

Failures shrink to minimal JSON case files (:mod:`repro.difftest
.shrink`) that tests and ``python -m repro fuzz --replay`` reload.
"""

from repro.difftest.cases import BuiltCase, FuzzCase
from repro.difftest.fuzzer import FederationFuzzer
from repro.difftest.oracle import StrategyOracle, Violation
from repro.difftest.runner import replay_cases, run_fuzz
from repro.difftest.shrink import shrink_case

__all__ = [
    "BuiltCase",
    "FederationFuzzer",
    "FuzzCase",
    "StrategyOracle",
    "Violation",
    "replay_cases",
    "run_fuzz",
    "shrink_case",
]
