"""Deterministic federation fuzzing: seeds in, adversarial cases out.

Every case is derived from ``random.Random(f"difftest:{seed}:{index}")``
alone, so a (seed, index) pair names the same federation forever — on
any machine, in any process, in any order of generation.  The knobs are
chosen to hit the semantics the strategies must agree on: heterogeneous
schemas (per-site predicate-attribute subsets), isomeric clusters, null
densities, reference chains of varying depth, multi-valued targets,
fault plans, and post-generation mutations.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from repro.difftest.cases import FuzzCase

#: Object-count multipliers the fuzzer draws from.  Small enough that a
#: 100-case sweep finishes in minutes, large enough that every case has
#: isomeric clusters and nulls to disagree over.
SCALES = (0.01, 0.015, 0.02)

#: Probability knobs.
P_MULTI_VALUED = 0.4
P_FAULTS = 0.35
P_MUTATE = 0.5
P_EVOLVE = 0.35
P_LINK_FAULT = 0.5

#: Evolution kinds the fuzzer draws churn from (resolved to concrete,
#: query-safe targets by ``safe_plan`` when the case builds).
EVOLVE_KINDS = ("leave", "join", "rename", "add", "drop")
#: Probability that a faulted case is a component-link storm (every
#: component->component link degraded, global-site links clean) — the
#: scenario replica failover can fully recover.
P_LINK_STORM = 0.3


class FederationFuzzer:
    """Generates the deterministic case stream of one fuzzing seed."""

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def case(self, index: int) -> FuzzCase:
        """The *index*-th case of this seed (order-independent)."""
        rng = random.Random(f"difftest:{self.seed}:{index}")
        n_dbs = rng.randint(2, 4)
        n_classes_max = rng.randint(1, 3)
        bias: Optional[float] = rng.choice((None, 0.3, 0.7))
        fault_spec = ""
        fault_seed = 0
        if rng.random() < P_FAULTS:
            fault_spec = self._fault_spec(rng, n_dbs)
            fault_seed = index + 1
        evolve = ""
        if rng.random() < P_EVOLVE:
            evolve = ",".join(
                rng.choice(EVOLVE_KINDS) for _ in range(rng.randint(1, 3))
            )
        return FuzzCase(
            seed=self.seed * 100_003 + index,
            n_dbs=n_dbs,
            n_classes_min=1,
            n_classes_max=n_classes_max,
            scale=rng.choice(SCALES),
            local_pred_attr_bias=bias,
            multi_valued_targets=rng.random() < P_MULTI_VALUED,
            fault_spec=fault_spec,
            fault_seed=fault_seed,
            mutate=rng.random() < P_MUTATE,
            evolve=evolve,
            label=f"fuzz-{self.seed}-{index}",
        )

    def cases(self, count: int) -> Iterator[FuzzCase]:
        for index in range(count):
            yield self.case(index)

    def _fault_spec(self, rng: random.Random, n_dbs: int) -> str:
        """A compact fault spec: an outage + lossy link, or a link storm."""
        if rng.random() < P_LINK_STORM:
            # Kill direct component links only: the sites themselves
            # stay up and reachable through the global site, so failover
            # should reroute every check and recover the full answer.
            loss = rng.choice((0.9, 0.97))
            return ",".join(
                f"link:DB{a}>DB{b}:loss{loss}"
                for a in range(1, n_dbs + 1)
                for b in range(1, n_dbs + 1)
                if a != b
            )
        parts = []
        victim = f"DB{rng.randint(1, n_dbs)}"
        duration = rng.choice((0.5, 1.5, 5.0))
        parts.append(f"{victim}@0:{duration}")
        if rng.random() < P_LINK_FAULT:
            dst = f"DB{rng.randint(1, n_dbs)}"
            loss = rng.choice((0.2, 0.4))
            parts.append(f"link:*>{dst}:loss{loss}")
        return ",".join(parts)
