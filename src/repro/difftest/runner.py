"""Fuzzing runs and case replays, with byte-deterministic output.

``run_fuzz`` drives the fuzzer/oracle loop: one line per case carrying
the recipe summary and the CA answer digest, a shrunk JSON case file
per violation, and a final tally.  Because every line is derived from
the seed alone, two runs with the same seed produce identical output —
CI checks exactly that.  ``replay_cases`` re-checks committed case
files so a fixed bug stays fixed.
"""

from __future__ import annotations

import os
import sys
from typing import Iterable, List, Optional, TextIO

from repro.difftest.cases import FuzzCase
from repro.difftest.fuzzer import FederationFuzzer
from repro.difftest.oracle import StrategyOracle, Violation, case_digest
from repro.difftest.shrink import shrink_case
from repro.errors import ReproError


def _emit(stream: Optional[TextIO], text: str) -> None:
    print(text, file=stream if stream is not None else sys.stdout)


def run_fuzz(
    seed: int,
    count: int,
    out_dir: Optional[str] = None,
    stream: Optional[TextIO] = None,
    oracle: Optional[StrategyOracle] = None,
) -> List[Violation]:
    """Check *count* cases of *seed*; returns all violations found.

    For every violating case the recipe is shrunk and, when *out_dir*
    is given, written there as ``<label>.json`` for replay.
    """
    oracle = oracle or StrategyOracle()
    fuzzer = FederationFuzzer(seed)
    _emit(stream, (
        f"fuzz seed={seed} cases={count} "
        f"strategies={','.join(oracle.strategy_names)}"
    ))
    all_violations: List[Violation] = []
    for index, case in enumerate(fuzzer.cases(count)):
        violations = oracle.check(case)
        digest = case_digest(case)
        status = "ok" if not violations else (
            f"VIOLATION x{len(violations)}"
        )
        _emit(stream, (
            f"[{index:3d}] {case.label} {case.describe()} "
            f"ca={digest} {status}"
        ))
        if not violations:
            continue
        all_violations.extend(violations)
        for violation in violations:
            _emit(stream, f"      {violation}")
        shrunk = shrink_case(case, lambda c: bool(oracle.check(c)))
        _emit(stream, f"      shrunk to: {shrunk.describe()}")
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(out_dir, f"{case.label}.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(shrunk.to_json() + "\n")
            _emit(stream, f"      wrote {path}")
    _emit(stream, (
        f"fuzz: {count} case(s), {len(all_violations)} violation(s)"
    ))
    return all_violations


def _collect_case_paths(paths: Iterable[str]) -> List[str]:
    """Expand directories to their sorted ``*.json`` members."""
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            collected.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".json")
            )
        else:
            collected.append(path)
    if not collected:
        raise ReproError("no case files to replay")
    return collected


def replay_cases(
    paths: Iterable[str],
    stream: Optional[TextIO] = None,
    oracle: Optional[StrategyOracle] = None,
) -> List[Violation]:
    """Re-check committed case files; returns all violations found."""
    oracle = oracle or StrategyOracle()
    all_violations: List[Violation] = []
    case_paths = _collect_case_paths(paths)
    for path in case_paths:
        with open(path, "r", encoding="utf-8") as handle:
            case = FuzzCase.from_json(handle.read())
        violations = oracle.check(case)
        status = "ok" if not violations else f"VIOLATION x{len(violations)}"
        _emit(stream, f"replay {path}: {case.describe()} {status}")
        for violation in violations:
            _emit(stream, f"      {violation}")
        all_violations.extend(violations)
    _emit(stream, (
        f"replay: {len(case_paths)} case(s), "
        f"{len(all_violations)} violation(s)"
    ))
    return all_violations
