"""Fuzz cases: a serializable recipe for one adversarial federation.

A :class:`FuzzCase` does not store the federation — it stores the few
numbers that deterministically *re-generate* it (parameter-sampling
seed, scale, knobs).  That keeps committed regression cases tiny and
diff-friendly, and guarantees a replayed case is byte-identical to the
one the fuzzer found.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.query import Query
from repro.core.system import DistributedSystem
from repro.errors import ReproError
from repro.evolution.plan import EvolutionPlan
from repro.faults.plan import FaultPlan
from repro.workload.generator import generate
from repro.workload.params import sample_params


@dataclass(frozen=True)
class BuiltCase:
    """A materialized fuzz case, ready to execute."""

    system: DistributedSystem
    query: Query
    fault_plan: Optional[FaultPlan] = None
    #: Resolved, query-safe evolution plan (None when the case has no
    #: ``evolve`` kinds or none of them had a safe target).
    evolution: Optional[EvolutionPlan] = None


@dataclass(frozen=True)
class FuzzCase:
    """One differential-test case (the generator recipe, not the data).

    Attributes:
        seed: drives both parameter sampling and federation generation.
        n_dbs: component databases.
        n_classes_min / n_classes_max: sampled class-chain length range.
        scale: object-count multiplier (Table 2's N_o times this).
        local_pred_attr_bias: skews how many predicates are locally
            evaluable (None keeps Table 2's uniform draw).
        multi_valued_targets: project the multi-valued ``t1`` attribute
            (exercises MultiValue union semantics).
        fault_spec: compact :meth:`FaultPlan.from_spec` string; empty
            means the fault suite is skipped for this case.
        fault_seed: seed for the plan's loss/jitter draws.
        mutate: run the monotonicity suite (register an extra assistant
            copy and re-execute).
        evolve: comma-joined evolution kinds (``leave``, ``join``,
            ``add``, ``drop``, ``rename``) resolved to concrete,
            query-safe targets by :func:`repro.evolution.seeding
            .safe_plan` at build time; empty skips the evolution suite.
        label: stable human-readable identifier.
    """

    seed: int
    n_dbs: int = 3
    n_classes_min: int = 1
    n_classes_max: int = 3
    scale: float = 0.02
    local_pred_attr_bias: Optional[float] = None
    multi_valued_targets: bool = False
    fault_spec: str = ""
    fault_seed: int = 0
    mutate: bool = False
    evolve: str = ""
    label: str = ""

    def __post_init__(self) -> None:
        if self.n_dbs < 1:
            raise ReproError("fuzz case needs at least one database")
        if not 1 <= self.n_classes_min <= self.n_classes_max:
            raise ReproError("bad class-count range")
        if self.scale <= 0:
            raise ReproError("scale must be positive")

    # --- generation --------------------------------------------------------

    def build(self) -> BuiltCase:
        """Regenerate the federation + query this case describes."""
        rng = random.Random(f"difftest:{self.seed}:params")
        params = sample_params(
            rng,
            n_dbs=self.n_dbs,
            n_classes_range=(self.n_classes_min, self.n_classes_max),
            local_pred_attr_bias=self.local_pred_attr_bias,
        )
        params.seed = self.seed
        workload = generate(
            params,
            seed=self.seed,
            scale=self.scale,
            multi_valued_targets=self.multi_valued_targets,
        )
        plan = None
        if self.fault_spec:
            plan = FaultPlan.from_spec(self.fault_spec, seed=self.fault_seed)
        evolution = None
        if self.evolve:
            from repro.evolution.seeding import safe_plan

            evolution = safe_plan(
                workload.system,
                workload.query,
                [k.strip() for k in self.evolve.split(",") if k.strip()],
                seed=self.seed,
            )
            if not evolution.active:
                evolution = None  # no kind had a safe target here
        return BuiltCase(
            system=workload.system,
            query=workload.query,
            fault_plan=plan,
            evolution=evolution,
        )

    # --- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        raw = dataclasses.asdict(self)
        return {k: v for k, v in raw.items() if v != FIELD_DEFAULTS.get(k)}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FuzzCase":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ReproError(
                f"fuzz case has unknown fields {sorted(unknown)}"
            )
        if "seed" not in raw:
            raise ReproError("fuzz case needs a seed")
        return cls(**raw)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"fuzz case is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise ReproError("fuzz case JSON must be an object")
        return cls.from_dict(raw)

    def describe(self) -> str:
        """One stable line summarizing the recipe (for run logs)."""
        parts = [
            f"seed={self.seed}",
            f"dbs={self.n_dbs}",
            f"classes={self.n_classes_min}..{self.n_classes_max}",
            f"scale={self.scale}",
        ]
        if self.local_pred_attr_bias is not None:
            parts.append(f"bias={self.local_pred_attr_bias}")
        if self.multi_valued_targets:
            parts.append("multi")
        if self.fault_spec:
            parts.append(f"faults={self.fault_spec!r}")
        if self.mutate:
            parts.append("mutate")
        if self.evolve:
            parts.append(f"evolve={self.evolve}")
        return " ".join(parts)


#: Default value per field — to_dict() omits them for compact case files.
FIELD_DEFAULTS: Dict[str, object] = {
    f.name: f.default
    for f in dataclasses.fields(FuzzCase)
    if f.default is not dataclasses.MISSING
}
