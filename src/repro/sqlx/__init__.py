"""SQL/X-subset front-end (the paper formulates queries in SQL/X).

:func:`parse_query` turns a query string like the paper's Q1::

    Select X.name, X.advisor.name
    From Student X
    Where X.address.city = Taipei and X.advisor.speciality = database
      and X.advisor.department.name = CS

into a :class:`~repro.core.query.Query`.
"""

from repro.sqlx.lexer import Token, TokenKind, tokenize
from repro.sqlx.parser import ParsedQuery, parse, parse_query, to_dnf

__all__ = [
    "ParsedQuery",
    "Token",
    "TokenKind",
    "parse",
    "parse_query",
    "to_dnf",
    "tokenize",
]
