"""Recursive-descent parser for the SQL/X subset.

Grammar (case-insensitive keywords)::

    query      := "Select" targets "From" range [ "Where" boolexpr ]
    targets    := path ("," path)*
    range      := IDENT [ "@" IDENT ] IDENT        -- class [@db] variable
    path       := VAR "." IDENT ("." IDENT)*
    boolexpr   := andexpr ("or" andexpr)*
    andexpr    := atom ("and" atom)*
    atom       := "not" atom | predicate | "(" boolexpr ")"
    predicate  := path (OP | ["not"] "contains") literal
    literal    := NUMBER | STRING | IDENT          -- bare idents are strings

``not`` is compiled away during parsing: De Morgan pushes it through
``and``/``or`` and every comparison operator has a 3VL-sound complement
(``Op.complement``), so negation never reaches the evaluator.

The ``Where`` clause is normalized to disjunctive normal form; the
conjunctive queries of the paper parse to a single conjunct.  A site
qualifier (``Student@DB1``) is accepted and surfaced on the parse result
(useful for expressing the paper's Q1'/Q1'' local queries) but the
produced :class:`~repro.core.query.Query` is always expressed against the
global schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.query import Op, Path, Predicate, Query
from repro.errors import SqlxSyntaxError
from repro.sqlx.lexer import Token, TokenKind, tokenize

_OPS = {op.value: op for op in Op}


# --- boolean expression tree -------------------------------------------------


@dataclass(frozen=True)
class PredNode:
    predicate: Predicate


@dataclass(frozen=True)
class AndNode:
    children: Tuple["BoolNode", ...]


@dataclass(frozen=True)
class OrNode:
    children: Tuple["BoolNode", ...]


BoolNode = Union[PredNode, AndNode, OrNode]


def negate(node: BoolNode) -> BoolNode:
    """Push a negation through the tree (De Morgan + leaf complements)."""
    if isinstance(node, PredNode):
        pred = node.predicate
        return PredNode(
            Predicate(path=pred.path, op=pred.op.complement(),
                      operand=pred.operand)
        )
    if isinstance(node, AndNode):
        return OrNode(tuple(negate(child) for child in node.children))
    if isinstance(node, OrNode):
        return AndNode(tuple(negate(child) for child in node.children))
    raise SqlxSyntaxError(f"unknown boolean node {node!r}")  # pragma: no cover


def to_dnf(node: BoolNode) -> Tuple[Tuple[Predicate, ...], ...]:
    """Flatten a boolean tree into a disjunction of conjunctions."""
    if isinstance(node, PredNode):
        return ((node.predicate,),)
    if isinstance(node, OrNode):
        disjuncts: List[Tuple[Predicate, ...]] = []
        for child in node.children:
            disjuncts.extend(to_dnf(child))
        return tuple(disjuncts)
    if isinstance(node, AndNode):
        product: Tuple[Tuple[Predicate, ...], ...] = ((),)
        for child in node.children:
            child_dnf = to_dnf(child)
            product = tuple(
                left + right for left in product for right in child_dnf
            )
        return product
    raise SqlxSyntaxError(f"unknown boolean node {node!r}")  # pragma: no cover


@dataclass
class ParsedQuery:
    """A parsed SQL/X query plus front-end metadata."""

    query: Query
    variable: str
    site: Optional[str] = None  # "DB1" for `From Student@DB1 X`


class _Parser:
    def __init__(self, tokens: Sequence[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # --- token helpers -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        token = self.current
        if token.kind is not kind or (text is not None and token.text != text):
            expected = text or kind.value
            raise SqlxSyntaxError(
                f"expected {expected!r}, found {token.text or 'end of input'!r}",
                token.position,
            )
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        token = self.current
        if not token.is_keyword(word):
            raise SqlxSyntaxError(
                f"expected keyword {word!r}, found "
                f"{token.text or 'end of input'!r}",
                token.position,
            )
        return self.advance()

    # --- grammar -------------------------------------------------------------

    def parse(self) -> ParsedQuery:
        self.expect_keyword("select")
        raw_targets = self._target_list()
        self.expect_keyword("from")
        range_class, site, variable = self._range()
        where: Tuple[Tuple[Predicate, ...], ...] = ()
        if self.current.is_keyword("where"):
            self.advance()
            tree = self._boolexpr(variable)
            where = to_dnf(tree)
        self.expect(TokenKind.EOF)
        targets = tuple(
            Path(self._strip_variable(path, variable)) for path in raw_targets
        )
        query = Query(range_class=range_class, targets=targets, where=where)
        return ParsedQuery(query=query, variable=variable, site=site)

    def _target_list(self) -> List[Tuple[str, ...]]:
        targets = [self._dotted()]
        while self.current.kind is TokenKind.COMMA:
            self.advance()
            targets.append(self._dotted())
        return targets

    def _dotted(self) -> Tuple[str, ...]:
        parts = [self.expect(TokenKind.IDENT).text]
        while self.current.kind is TokenKind.DOT:
            self.advance()
            parts.append(self.expect(TokenKind.IDENT).text)
        return tuple(parts)

    def _range(self) -> Tuple[str, Optional[str], str]:
        class_name = self.expect(TokenKind.IDENT).text
        site: Optional[str] = None
        if self.current.kind is TokenKind.AT:
            self.advance()
            site = self.expect(TokenKind.IDENT).text
        variable = self.expect(TokenKind.IDENT).text
        return class_name, site, variable

    def _boolexpr(self, variable: str) -> BoolNode:
        children = [self._andexpr(variable)]
        while self.current.is_keyword("or"):
            self.advance()
            children.append(self._andexpr(variable))
        if len(children) == 1:
            return children[0]
        return OrNode(tuple(children))

    def _andexpr(self, variable: str) -> BoolNode:
        children = [self._atom(variable)]
        while self.current.is_keyword("and"):
            self.advance()
            children.append(self._atom(variable))
        if len(children) == 1:
            return children[0]
        return AndNode(tuple(children))

    def _atom(self, variable: str) -> BoolNode:
        if self.current.is_keyword("not"):
            self.advance()
            return negate(self._atom(variable))
        if self.current.kind is TokenKind.LPAREN:
            self.advance()
            inner = self._boolexpr(variable)
            self.expect(TokenKind.RPAREN)
            return inner
        return PredNode(self._predicate(variable))

    def _predicate(self, variable: str) -> Predicate:
        dotted = self._dotted()
        path = Path(self._strip_variable(dotted, variable))
        token = self.current
        if token.kind is TokenKind.OP:
            op = _OPS[token.text]
            self.advance()
        elif token.is_keyword("contains"):
            op = Op.CONTAINS
            self.advance()
        elif token.is_keyword("not"):
            self.advance()
            self.expect_keyword("contains")
            op = Op.NOT_CONTAINS
        else:
            raise SqlxSyntaxError(
                f"expected comparison operator, found "
                f"{token.text or 'end of input'!r}",
                token.position,
            )
        operand = self._literal()
        return Predicate(path=path, op=op, operand=operand)

    def _literal(self):
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind in (TokenKind.STRING, TokenKind.IDENT):
            self.advance()
            return token.text
        raise SqlxSyntaxError(
            f"expected literal, found {token.text or 'end of input'!r}",
            token.position,
        )

    @staticmethod
    def _strip_variable(
        dotted: Tuple[str, ...], variable: str
    ) -> Tuple[str, ...]:
        """Drop the leading range variable from ``X.advisor.name``."""
        if len(dotted) > 1 and dotted[0] == variable:
            return dotted[1:]
        return dotted


def parse_query(text: str) -> Query:
    """Parse SQL/X *text* into a global :class:`Query`."""
    return parse(text).query


def parse(text: str) -> ParsedQuery:
    """Parse SQL/X *text*, keeping front-end metadata (variable, site)."""
    tokens = tokenize(text)
    return _Parser(tokens).parse()
