"""Tokenizer for the SQL/X subset used by the paper's queries.

Recognized token kinds: keywords (``Select``, ``From``, ``Where``,
``and``, ``or``, ``contains`` — case-insensitive), identifiers, dotted
path separators, commas, parentheses, comparison operators, numeric
literals, and single- or double-quoted string literals.  Bare identifiers
on the right-hand side of a comparison (the paper writes
``X.address.city=Taipei``) are string literals by convention.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List

from repro.errors import SqlxSyntaxError

KEYWORDS = frozenset({"select", "from", "where", "and", "or", "not", "contains"})


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"          # = != < <= > >=
    DOT = "dot"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    AT = "at"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<dot>\.)
  | (?P<comma>,)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<at>@)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*; raises :class:`SqlxSyntaxError` on junk input."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SqlxSyntaxError(
                f"unexpected character {text[position]!r}", position
            )
        position = match.end()
        kind = match.lastgroup
        value = match.group()
        if kind == "ws":
            continue
        if kind == "ident":
            lowered = value.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, lowered, match.start()))
            else:
                tokens.append(Token(TokenKind.IDENT, value, match.start()))
        elif kind == "number":
            tokens.append(Token(TokenKind.NUMBER, value, match.start()))
        elif kind == "string":
            tokens.append(Token(TokenKind.STRING, value[1:-1], match.start()))
        elif kind == "op":
            text_op = "!=" if value == "<>" else value
            tokens.append(Token(TokenKind.OP, text_op, match.start()))
        elif kind == "dot":
            tokens.append(Token(TokenKind.DOT, value, match.start()))
        elif kind == "comma":
            tokens.append(Token(TokenKind.COMMA, value, match.start()))
        elif kind == "lparen":
            tokens.append(Token(TokenKind.LPAREN, value, match.start()))
        elif kind == "rparen":
            tokens.append(Token(TokenKind.RPAREN, value, match.start()))
        elif kind == "at":
            tokens.append(Token(TokenKind.AT, value, match.start()))
    tokens.append(Token(TokenKind.EOF, "", len(text)))
    return tokens
