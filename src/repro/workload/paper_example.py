"""The paper's running example: the school federation (Figures 1-5).

Three component databases store personal information at the same school:

* **DB1** — Student(s-no, name, age, advisor, sex), Teacher(name,
  department), Department(name);
* **DB2** — Student(s-no, name, sex, address, advisor), Teacher(name,
  speciality), Address(city, street, zipcode);
* **DB3** — Teacher(name, department), Department(name, location).

The object instances reproduce Figure 4 exactly (including the null
values: John's sex and Abel's department in DB1, the CS department's
location in DB3) and the GOid mapping tables reproduce Figure 5.

Query :data:`Q1_TEXT` is the paper's Q1; its documented answer is the
certain result (Hedy, Kelly) and the maybe result (Tony, Haley).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.system import DistributedSystem
from repro.integration.global_schema import ClassCorrespondence
from repro.integration.isomerism import table_from_correspondences
from repro.integration.mapping import MappingCatalog
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import ClassDef, ComponentSchema, complex_attr, primitive
from repro.objectdb.values import NULL

#: The paper's query Q1 (Figure 3a).
Q1_TEXT = (
    "Select X.name, X.advisor.name From Student X "
    "Where X.address.city = Taipei and X.advisor.speciality = database "
    "and X.advisor.department.name = CS"
)


def _db1() -> ComponentDatabase:
    schema = ComponentSchema.of(
        "DB1",
        [
            ClassDef.of(
                "Student",
                [
                    primitive("s-no"),
                    primitive("name"),
                    primitive("age"),
                    complex_attr("advisor", "Teacher"),
                    primitive("sex"),
                ],
            ),
            ClassDef.of(
                "Teacher",
                [primitive("name"), complex_attr("department", "Department")],
            ),
            ClassDef.of("Department", [primitive("name")]),
        ],
    )
    db = ComponentDatabase(schema)

    def loid(value: str) -> LOid:
        return LOid("DB1", value)

    students = [
        ("s1", 804301, "John", 31, "t1", NULL),
        ("s2", 798302, "Tony", 28, "t3", "male"),
        ("s3", 808301, "Mary", 24, "t2", "female"),
    ]
    for sid, sno, name, age, advisor, sex in students:
        db.insert(
            LocalObject(
                loid=loid(sid),
                class_name="Student",
                values={
                    "s-no": sno,
                    "name": name,
                    "age": age,
                    "advisor": loid(advisor),
                    "sex": sex,
                },
            )
        )
    teachers = [("t1", "Jeffery", "d1"), ("t2", "Abel", NULL), ("t3", "Haley", "d1")]
    for tid, name, dept in teachers:
        db.insert(
            LocalObject(
                loid=loid(tid),
                class_name="Teacher",
                values={
                    "name": name,
                    "department": loid(dept) if dept is not NULL else NULL,
                },
            )
        )
    for did, name in [("d1", "CS"), ("d2", "EE")]:
        db.insert(
            LocalObject(loid=loid(did), class_name="Department", values={"name": name})
        )
    return db


def _db2() -> ComponentDatabase:
    schema = ComponentSchema.of(
        "DB2",
        [
            ClassDef.of(
                "Student",
                [
                    primitive("s-no"),
                    primitive("name"),
                    primitive("sex"),
                    complex_attr("address", "Address"),
                    complex_attr("advisor", "Teacher"),
                ],
            ),
            ClassDef.of("Teacher", [primitive("name"), primitive("speciality")]),
            ClassDef.of(
                "Address",
                [primitive("city"), primitive("street"), primitive("zipcode")],
            ),
        ],
    )
    db = ComponentDatabase(schema)

    def loid(value: str) -> LOid:
        return LOid("DB2", value)

    students = [
        ("s1'", 762315, "Hedy", "female", "a1'", "t1'"),
        ("s2'", 804301, "John", "male", "a2'", "t2'"),
        ("s3'", 828307, "Fanny", "female", "a1'", "t2'"),
    ]
    for sid, sno, name, sex, address, advisor in students:
        db.insert(
            LocalObject(
                loid=loid(sid),
                class_name="Student",
                values={
                    "s-no": sno,
                    "name": name,
                    "sex": sex,
                    "address": loid(address),
                    "advisor": loid(advisor),
                },
            )
        )
    for tid, name, spec in [("t1'", "Kelly", "database"), ("t2'", "Jeffery", "network")]:
        db.insert(
            LocalObject(
                loid=loid(tid),
                class_name="Teacher",
                values={"name": name, "speciality": spec},
            )
        )
    addresses = [
        ("a1'", "Taipei", "Park", 100),
        ("a2'", "HsinChu", "Horber", 800),
    ]
    for aid, city, street, zipcode in addresses:
        db.insert(
            LocalObject(
                loid=loid(aid),
                class_name="Address",
                values={"city": city, "street": street, "zipcode": zipcode},
            )
        )
    return db


def _db3() -> ComponentDatabase:
    schema = ComponentSchema.of(
        "DB3",
        [
            ClassDef.of(
                "Teacher",
                [primitive("name"), complex_attr("department", "Department")],
            ),
            ClassDef.of("Department", [primitive("name"), primitive("location")]),
        ],
    )
    db = ComponentDatabase(schema)

    def loid(value: str) -> LOid:
        return LOid("DB3", value)

    departments = [
        ('d1"', "EE", "building E"),
        ('d2"', "CS", NULL),
        ('d3"', "PH", "building D"),
    ]
    for did, name, location in departments:
        db.insert(
            LocalObject(
                loid=loid(did),
                class_name="Department",
                values={"name": name, "location": location},
            )
        )
    for tid, name, dept in [('t1"', "Abel", 'd1"'), ('t2"', "Kelly", 'd2"')]:
        db.insert(
            LocalObject(
                loid=loid(tid),
                class_name="Teacher",
                values={"name": name, "department": loid(dept)},
            )
        )
    return db


def correspondences() -> Tuple[ClassCorrespondence, ...]:
    """The global classes and their constituents (Figure 2)."""
    return (
        ClassCorrespondence.of(
            "Student",
            [("DB1", "Student"), ("DB2", "Student")],
            key_attribute="s-no",
        ),
        ClassCorrespondence.of(
            "Teacher",
            [("DB1", "Teacher"), ("DB2", "Teacher"), ("DB3", "Teacher")],
            key_attribute="name",
        ),
        ClassCorrespondence.of(
            "Department",
            [("DB1", "Department"), ("DB3", "Department")],
            key_attribute="name",
        ),
        ClassCorrespondence.of(
            "Address",
            [("DB2", "Address")],
            key_attribute="city",
        ),
    )


def figure5_catalog() -> MappingCatalog:
    """The GOid mapping tables exactly as printed in Figure 5."""

    def l1(v: str) -> LOid:
        return LOid("DB1", v)

    def l2(v: str) -> LOid:
        return LOid("DB2", v)

    def l3(v: str) -> LOid:
        return LOid("DB3", v)

    catalog = MappingCatalog()
    catalog.register(
        table_from_correspondences(
            "Student",
            [
                (GOid("gs1"), [l1("s1"), l2("s2'")]),
                (GOid("gs2"), [l1("s2")]),
                (GOid("gs3"), [l1("s3")]),
                (GOid("gs4"), [l2("s1'")]),
                (GOid("gs5"), [l2("s3'")]),
            ],
        )
    )
    catalog.register(
        table_from_correspondences(
            "Teacher",
            [
                (GOid("gt1"), [l1("t1"), l2("t2'")]),
                (GOid("gt2"), [l1("t2"), l3('t1"')]),
                (GOid("gt3"), [l1("t3")]),
                (GOid("gt4"), [l2("t1'"), l3('t2"')]),
            ],
        )
    )
    catalog.register(
        table_from_correspondences(
            "Department",
            [
                (GOid("gd1"), [l1("d1"), l3('d2"')]),
                (GOid("gd2"), [l1("d2"), l3('d1"')]),
                (GOid("gd3"), [l3('d3"')]),
            ],
        )
    )
    catalog.register(
        table_from_correspondences(
            "Address",
            [
                (GOid("ga1"), [l2("a1'")]),
                (GOid("ga2"), [l2("a2'")]),
            ],
        )
    )
    return catalog


def build_school_federation(
    discover: bool = False,
) -> DistributedSystem:
    """Stand up the school federation of the running example.

    Args:
        discover: when True, the GOid mapping tables are *discovered*
            from the data through key-attribute matching instead of being
            installed from Figure 5 (the two must agree up to GOid
            renaming; a test asserts this).
    """
    databases = [_db1(), _db2(), _db3()]
    catalog = None if discover else figure5_catalog()
    return DistributedSystem.build(
        databases, correspondences(), catalog=catalog
    )


def expected_q1_answers() -> Dict[str, Tuple[Tuple[str, str], ...]]:
    """The paper's documented answer to Q1 (Section 2.2/2.3)."""
    return {
        "certain": (("Hedy", "Kelly"),),
        "maybe": (("Tony", "Haley"),),
    }
