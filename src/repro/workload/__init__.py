"""Workloads: the paper example, Table 2 parameters, and the generator."""

from repro.workload.paper_example import (
    Q1_TEXT,
    build_school_federation,
    expected_q1_answers,
    figure5_catalog,
)

__all__ = [
    "Q1_TEXT",
    "build_school_federation",
    "expected_q1_answers",
    "figure5_catalog",
]
