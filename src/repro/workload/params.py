"""The paper's database and query parameters (Table 2).

The performance study draws 500 parameter sets per experimental setting
and averages the resulting times.  This module models those parameters,
their default sampling ranges, and the paper's derived quantities:

* ``R_ps^k   = 0.45 ** sqrt(N_p^k)``   — combined selectivity of the
  predicates on class k;
* ``R_iso^k  = 1 - 0.9 ** (N_db - 1)`` — ratio of objects with isomeric
  copies;
* ``R_pps^i,k = 0.45 ** sqrt(N_pa^i,k)`` — combined selectivity of the
  *local* predicates at database i;
* ``R_m^i,k  = 1`` when the site misses a predicate attribute, else
  uniform in [0, 0.2];
* ``R_as^i,k = 0.55 ** sqrt(N_p^k - N_pa^i,k)`` — selectivity of the
  unsolved predicates on assistant objects;
* ``R_ss^i,k = 0.6  ** sqrt(N_p^k - N_pa^i,k)`` — selectivity of the
  signature filter (slightly above R_as: signatures admit false
  positives, never false negatives).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError


def combined_predicate_selectivity(n_predicates: int, base: float = 0.45) -> float:
    """``base ** sqrt(n)`` — Table 2's selectivity law (1.0 for n=0)."""
    if n_predicates < 0:
        raise WorkloadError("negative predicate count")
    if n_predicates == 0:
        return 1.0
    return base ** math.sqrt(n_predicates)


def isomerism_ratio_for(n_dbs: int) -> float:
    """``1 - 0.9 ** (N_db - 1)`` — Table 2's R_iso."""
    if n_dbs < 1:
        raise WorkloadError("need at least one component database")
    return 1.0 - 0.9 ** (n_dbs - 1)


@dataclass
class DbClassParams:
    """Parameters of one constituent class at one database (Table 2, part 4)."""

    n_objects: int              # N_o^{i,k}
    n_local_pred_attrs: int     # N_pa^{i,k}: predicate attrs defined locally
    n_target_attrs: int         # N_ta^{i,k}
    # Null-value probability on *present* predicate attributes, drawn from
    # Table 2's 0~0.2 range.  Table 2's "R_m = 1 when the site misses a
    # predicate attribute" case is structural and derivable from
    # n_local_pred_attrs < n_predicates, so it is not stored here.
    r_missing: float

    def __post_init__(self) -> None:
        if self.n_objects < 0:
            raise WorkloadError("negative object count")
        if not 0.0 <= self.r_missing <= 1.0:
            raise WorkloadError("R_m must be within [0, 1]")


@dataclass
class ClassParams:
    """Parameters of one involved global class (Table 2, parts 2-3)."""

    n_predicates: int            # N_p^k
    r_referenced: float          # R_r^k
    per_db: Dict[str, DbClassParams] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.n_predicates:
            raise WorkloadError("negative predicate count")
        if not 0.0 < self.r_referenced <= 1.0:
            raise WorkloadError("R_r must be within (0, 1]")

    @property
    def predicate_selectivity(self) -> float:
        """R_ps^k — combined selectivity of the class's predicates."""
        return combined_predicate_selectivity(self.n_predicates)

    def local_selectivity(self, db_name: str) -> float:
        """R_pps^{i,k} — combined selectivity of the local predicates."""
        return combined_predicate_selectivity(
            self.per_db[db_name].n_local_pred_attrs
        )

    def unsolved_count(self, db_name: str) -> int:
        """N_p^k - N_pa^{i,k} — predicates unsolvable at the site."""
        return self.n_predicates - self.per_db[db_name].n_local_pred_attrs

    def assistant_selectivity(self, db_name: str) -> float:
        """R_as^{i,k} — selectivity of unsolved predicates on assistants."""
        return combined_predicate_selectivity(
            self.unsolved_count(db_name), base=0.55
        )

    def signature_selectivity(self, db_name: str) -> float:
        """R_ss^{i,k} — selectivity of the signature filter."""
        return combined_predicate_selectivity(
            self.unsolved_count(db_name), base=0.6
        )


@dataclass
class WorkloadParams:
    """One full parameter set for one simulated global query (Table 2)."""

    db_names: Tuple[str, ...]                       # N_db databases
    classes: List[ClassParams] = field(default_factory=list)  # N_c classes
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.db_names:
            raise WorkloadError("need at least one component database")
        if not self.classes:
            raise WorkloadError("need at least one involved global class")
        for cls_params in self.classes:
            missing = set(self.db_names) - set(cls_params.per_db)
            if missing:
                raise WorkloadError(
                    f"class parameters missing for databases {sorted(missing)}"
                )

    @property
    def n_dbs(self) -> int:
        return len(self.db_names)

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    @property
    def r_iso(self) -> float:
        """R_iso — derived from N_db as in Table 2."""
        return isomerism_ratio_for(self.n_dbs)

    def total_predicates(self) -> int:
        return sum(c.n_predicates for c in self.classes)


#: Table 2 default sampling ranges.
DEFAULT_N_DBS = 3
DEFAULT_N_CLASSES_RANGE = (1, 4)
DEFAULT_N_PREDICATES_RANGE = (0, 3)
DEFAULT_N_OBJECTS_RANGE = (5000, 6000)
DEFAULT_N_TARGETS_RANGE = (0, 2)
DEFAULT_R_REFERENCED_RANGE = (0.5, 1.0)
DEFAULT_R_MISSING_RANGE = (0.0, 0.2)


def sample_params(
    rng: random.Random,
    n_dbs: int = DEFAULT_N_DBS,
    n_classes_range: Tuple[int, int] = DEFAULT_N_CLASSES_RANGE,
    n_predicates_range: Tuple[int, int] = DEFAULT_N_PREDICATES_RANGE,
    n_objects_range: Tuple[int, int] = DEFAULT_N_OBJECTS_RANGE,
    r_referenced_range: Tuple[float, float] = DEFAULT_R_REFERENCED_RANGE,
    r_missing_range: Tuple[float, float] = DEFAULT_R_MISSING_RANGE,
    local_pred_attr_bias: Optional[float] = None,
) -> WorkloadParams:
    """Draw one Table 2 parameter set.

    The experiments adjust one knob at a time (number of objects, number
    of databases, selectivity) and keep the rest at the defaults, exactly
    as in Section 4.1.  ``local_pred_attr_bias``, when given in [0, 1],
    skews N_pa toward N_p (1.0 -> all predicates local everywhere).
    """
    db_names = tuple(f"DB{i + 1}" for i in range(n_dbs))
    n_classes = rng.randint(*n_classes_range)
    classes: List[ClassParams] = []
    for _k in range(n_classes):
        n_predicates = rng.randint(*n_predicates_range)
        per_db: Dict[str, DbClassParams] = {}
        for db_name in db_names:
            if local_pred_attr_bias is None:
                n_pa = rng.randint(0, n_predicates) if n_predicates else 0
            else:
                n_pa = sum(
                    1
                    for _ in range(n_predicates)
                    if rng.random() < local_pred_attr_bias
                )
            per_db[db_name] = DbClassParams(
                n_objects=rng.randint(*n_objects_range),
                n_local_pred_attrs=n_pa,
                n_target_attrs=rng.randint(*DEFAULT_N_TARGETS_RANGE),
                r_missing=rng.uniform(*r_missing_range),
            )
        classes.append(
            ClassParams(
                n_predicates=n_predicates,
                r_referenced=rng.uniform(*r_referenced_range),
                per_db=per_db,
            )
        )
    # At least one predicate somewhere keeps the query non-trivial.
    if all(c.n_predicates == 0 for c in classes):
        classes[0].n_predicates = 1
        local_prob = (
            0.5 if local_pred_attr_bias is None else local_pred_attr_bias
        )
        for db_name in db_names:
            classes[0].per_db[db_name].n_local_pred_attrs = (
                1 if rng.random() < local_prob else 0
            )
    return WorkloadParams(db_names=db_names, classes=classes)


def table2_rows() -> List[Tuple[str, str, str]]:
    """The rows of Table 2, for the benchmark harness to print."""
    return [
        ("N_db", "number of component databases involved", "3"),
        ("N_c", "number of global classes involved", "1 ~ 4"),
        ("N_p^k", "number of predicates on the class", "0 ~ 3"),
        ("R_ps^k", "selectivity of the predicates on the class",
         "0.45^sqrt(N_p^k)"),
        ("R_r^k", "ratio of objects to be referenced", "0.5 ~ 1"),
        ("R_iso^k", "ratio of objects having isomeric objects",
         "1 - 0.9^(N_db-1)"),
        ("N_o^{i,k}", "number of objects", "5000 ~ 6000"),
        ("N_qa^{i,k}", "number of attributes involved in the subquery",
         "max{N_pa, N_ta} ~ (N_pa + N_ta)"),
        ("N_pa^{i,k}", "number of attributes involved in the local predicates",
         "0 ~ N_p^k"),
        ("N_ta^{i,k}", "number of target attributes in the subquery", "0 ~ 2"),
        ("R_pps^{i,k}", "selectivity of the local predicates on the class",
         "0.45^sqrt(N_pa^{i,k})"),
        ("R_m^{i,k}", "ratio of objects which have missing data",
         "1 if (N_p^k - N_pa^{i,k}) > 0, 0 ~ 0.2 otherwise"),
        ("R_as^{i,k}", "selectivity of the predicates on the assistant objects",
         "0.55^sqrt(N_p^k - N_pa^{i,k})"),
        ("R_ss^{i,k}",
         "selectivity of the predicates on the signatures of the assistants",
         "0.6^sqrt(N_p^k - N_pa^{i,k})"),
    ]
