"""Concrete synthetic federations from Table 2 parameter sets.

The paper's simulation is parameter-driven; to validate the strategies
end-to-end we additionally *materialize* federations: real objects with
real missing data in real component databases, so that CA, BL and PL run
their full logic and must produce identical answers.

Construction (one global class chain, as the paper's single-range-class
queries traverse one composition hierarchy):

* global classes ``K1 -> K2 -> ... -> K_Nc`` linked by the complex
  attribute ``ref``; class k carries predicate attributes ``p0..``,
  target attributes ``t0..`` and the key attribute ``key``;
* per database i, the constituent of class k defines ``N_pa^{i,k}`` of
  the predicate attributes — the others are *missing attributes* at that
  site (every global attribute is defined at one site at least);
* entities are drawn once (values consistent across copies — the paper
  does not model inter-site inconsistency) and placed in one database,
  or, with probability ``R_iso``, in ``N_iso = 2`` databases;
* each present predicate attribute is nulled with probability
  ``R_m^{i,k}`` per copy, so an assistant copy may hold the data a maybe
  result is missing;
* references point at a ``R_r`` fraction of the next class's entities;
  a copy's ``ref`` is the *local* copy of the referenced entity when one
  exists at the same site and null otherwise.

The generated query selects the root key plus one target per class and
applies ``attr < threshold`` predicates whose thresholds realize the
per-class selectivity ``R_ps^k``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.query import Op, Path, Predicate, Query
from repro.core.system import DistributedSystem
from repro.errors import WorkloadError
from repro.integration.global_schema import ClassCorrespondence
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import ClassDef, ComponentSchema, complex_attr, primitive
from repro.objectdb.values import NULL
from repro.workload.params import ClassParams, WorkloadParams

#: Value domain for predicate attributes; thresholds scale against this.
VALUE_DOMAIN = 1_000_000

#: Probability that an entity has a copy at any given non-primary site.
#: Chosen so that P(has isomeric copies) = 1 - 0.9^(N_db-1), Table 2's
#: R_iso law.
REPLICA_PROBABILITY = 0.1


@dataclass
class GeneratedWorkload:
    """A materialized federation plus the query to run on it."""

    system: DistributedSystem
    query: Query
    params: WorkloadParams
    entities_per_class: Tuple[int, ...] = ()


def _class_name(k: int) -> str:
    return f"K{k + 1}"


def _predicate_attr(j: int) -> str:
    return f"p{j}"


def _target_attr(j: int) -> str:
    return f"t{j}"


@dataclass
class _Entity:
    """One real-world entity of one class, shared by its copies."""

    key: int
    values: Dict[str, int]
    homes: Tuple[str, ...]
    ref_key: Optional[int] = None  # key of the referenced next-class entity


def _predicate_kind(j: int) -> Op:
    """Alternate equality and range predicates.

    The paper's example queries compare with equality (Q1), while Table 2
    only fixes selectivities; alternating EQ (categorical domain) and LT
    (threshold) predicates exercises both the signature-filterable and
    the signature-inconclusive paths.
    """
    return Op.EQ if j % 2 == 0 else Op.LT


def _eq_domain_size(per_pred_selectivity: float) -> int:
    """Category count realizing ~the per-predicate selectivity for EQ."""
    return max(2, int(round(1.0 / max(per_pred_selectivity, 1e-6))))


def _per_pred_selectivity(cls_params: ClassParams) -> float:
    if cls_params.n_predicates == 0:
        return 1.0
    return cls_params.predicate_selectivity ** (1.0 / cls_params.n_predicates)


def _assign_local_pred_attrs(
    params: WorkloadParams, class_index: int, rng: random.Random
) -> Dict[str, Tuple[str, ...]]:
    """Choose which predicate attributes each database defines.

    Returns db -> defined predicate attribute names, respecting
    ``N_pa^{i,k}`` and guaranteeing every attribute is defined somewhere
    (a global attribute exists because some constituent has it).
    """
    cls = params.classes[class_index]
    all_attrs = [_predicate_attr(j) for j in range(cls.n_predicates)]
    chosen: Dict[str, Tuple[str, ...]] = {}
    for db_name in params.db_names:
        n_pa = min(cls.per_db[db_name].n_local_pred_attrs, len(all_attrs))
        chosen[db_name] = tuple(sorted(rng.sample(all_attrs, n_pa)))
    for attr in all_attrs:
        if not any(attr in defined for defined in chosen.values()):
            db_name = rng.choice(params.db_names)
            chosen[db_name] = tuple(sorted(chosen[db_name] + (attr,)))
            cls.per_db[db_name].n_local_pred_attrs = len(chosen[db_name])
    return chosen


def _draw_entities(
    params: WorkloadParams,
    class_index: int,
    rng: random.Random,
    scale: float,
) -> List[_Entity]:
    """Create the entity pool of one class and place copies in databases."""
    cls = params.classes[class_index]
    copies_wanted = sum(
        max(1, int(cls.per_db[db].n_objects * scale)) for db in params.db_names
    )
    # Table 2's R_iso = 1 - 0.9^(N_db-1) is the placement model "each
    # entity has a copy at any other site with probability 0.1": the
    # probability of having at least one isomeric copy is then exactly
    # R_iso, and the average copy count of isomeric entities stays ~2
    # (Table 1's N_iso) at moderate N_db.
    avg_copies = 1.0 + REPLICA_PROBABILITY * (params.n_dbs - 1)
    n_entities = max(1, int(round(copies_wanted / avg_copies)))
    per_pred = _per_pred_selectivity(cls)
    entities: List[_Entity] = []
    for key in range(n_entities):
        values = {}
        for j in range(cls.n_predicates):
            if _predicate_kind(j) is Op.EQ:
                values[_predicate_attr(j)] = rng.randrange(
                    _eq_domain_size(per_pred)
                )
            else:
                values[_predicate_attr(j)] = rng.randrange(VALUE_DOMAIN)
        for j in range(2):
            values[_target_attr(j)] = rng.randrange(VALUE_DOMAIN)
        primary = rng.choice(params.db_names)
        homes = [primary]
        for db_name in params.db_names:
            if db_name != primary and rng.random() < REPLICA_PROBABILITY:
                homes.append(db_name)
        entities.append(_Entity(key=key, values=values, homes=tuple(homes)))
    return entities


#: Probability that a reference targets an entity co-located with every
#: copy of the referencing entity (when such targets exist).  Keeps
#: composition hierarchies mostly walkable at each site, as the paper's
#: schemas are, while still exercising dangling-reference missing data.
CO_LOCATION_BIAS = 0.85


def _wire_references(
    entities: List[_Entity],
    next_entities: List[_Entity],
    r_referenced: float,
    rng: random.Random,
) -> None:
    """Point each entity at a referenced next-class entity (R_r pool).

    Targets co-located with the referencing entity's copies are preferred
    (see :data:`CO_LOCATION_BIAS`): a component database's stored
    reference must point at a local object, so a non-co-located target
    reads as a null reference at that site.
    """
    pool_size = max(1, int(len(next_entities) * r_referenced))
    pool = next_entities[:pool_size]
    # Lazily computed: home set -> pool targets stored at all those homes.
    covering: Dict[Tuple[str, ...], List[_Entity]] = {}
    for entity in entities:
        key = tuple(sorted(entity.homes))
        if key not in covering:
            covering[key] = [
                t for t in pool if set(key) <= set(t.homes)
            ]
        candidates = covering[key]
        if candidates and rng.random() < CO_LOCATION_BIAS:
            entity.ref_key = rng.choice(candidates).key
        else:
            entity.ref_key = rng.choice(pool).key


def generate(
    params: WorkloadParams,
    seed: Optional[int] = None,
    scale: float = 1.0,
    multi_valued_targets: bool = False,
) -> GeneratedWorkload:
    """Materialize one federation + query from a Table 2 parameter set.

    Args:
        scale: multiplies every N_o (tests run at scale << 1 to stay
            fast; the paper's 5000-6000 objects are scale=1).
        multi_valued_targets: declare ``t1`` a multi-valued *global*
            attribute (each copy stores its own drawn value; integration
            unions them) and project it in the query — exercises the
            MultiValue merge semantics the scalar workload never touches.
    """
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    rng = random.Random(params.seed if seed is None else seed)
    n_classes = params.n_classes

    # --- who defines which predicate attribute -----------------------------
    defined_attrs = [
        _assign_local_pred_attrs(params, k, rng) for k in range(n_classes)
    ]

    # --- entity pools and references ----------------------------------------
    entity_pools = [
        _draw_entities(params, k, rng, scale) for k in range(n_classes)
    ]
    for k in range(n_classes - 1):
        _wire_references(
            entity_pools[k],
            entity_pools[k + 1],
            params.classes[k].r_referenced,
            rng,
        )

    # --- component schemas ----------------------------------------------------
    databases: Dict[str, ComponentDatabase] = {}
    for db_name in params.db_names:
        class_defs = []
        for k in range(n_classes):
            attrs = [primitive("key")]
            for j in range(2):
                attrs.append(primitive(_target_attr(j)))
            for attr_name in defined_attrs[k][db_name]:
                attrs.append(primitive(attr_name))
            if k < n_classes - 1:
                attrs.append(complex_attr("ref", _class_name(k + 1)))
            class_defs.append(ClassDef.of(_class_name(k), attrs))
        databases[db_name] = ComponentDatabase(
            ComponentSchema.of(db_name, class_defs)
        )

    # --- objects ---------------------------------------------------------------
    local_keys: List[Dict[str, Dict[int, LOid]]] = []
    for k in range(n_classes):
        per_db: Dict[str, Dict[int, LOid]] = {db: {} for db in params.db_names}
        for entity in entity_pools[k]:
            for db_name in entity.homes:
                loid = LOid(db_name, f"{_class_name(k).lower()}_{entity.key}")
                per_db[db_name][entity.key] = loid
        local_keys.append(per_db)

    for k in range(n_classes):
        cls_params = params.classes[k]
        for entity in entity_pools[k]:
            for db_name in entity.homes:
                r_missing = min(cls_params.per_db[db_name].r_missing, 0.95)
                values: Dict[str, object] = {"key": entity.key}
                for j in range(2):
                    values[_target_attr(j)] = entity.values[_target_attr(j)]
                if multi_valued_targets:
                    # Each copy contributes its own observation; the
                    # global attribute is declared multi-valued, so
                    # integration unions the copies' values.
                    values[_target_attr(1)] = rng.randrange(VALUE_DOMAIN)
                for attr_name in defined_attrs[k][db_name]:
                    if rng.random() < r_missing:
                        values[attr_name] = NULL
                    else:
                        values[attr_name] = entity.values[attr_name]
                if k < n_classes - 1 and entity.ref_key is not None:
                    local_ref = local_keys[k + 1][db_name].get(entity.ref_key)
                    values["ref"] = local_ref if local_ref is not None else NULL
                databases[db_name].insert(
                    LocalObject(
                        loid=local_keys[k][db_name][entity.key],
                        class_name=_class_name(k),
                        values=values,
                    ),
                    validate=False,
                )

    # --- federation -------------------------------------------------------------
    correspondences = tuple(
        ClassCorrespondence.of(
            _class_name(k),
            [(db_name, _class_name(k)) for db_name in params.db_names],
            key_attribute="key",
            multi_valued_attributes=(
                (_target_attr(1),) if multi_valued_targets else ()
            ),
        )
        for k in range(n_classes)
    )
    system = DistributedSystem.build(
        list(databases.values()), correspondences
    )

    # --- the query ----------------------------------------------------------------
    query = build_query(params, multi_valued_targets=multi_valued_targets)
    return GeneratedWorkload(
        system=system,
        query=query,
        params=params,
        entities_per_class=tuple(len(pool) for pool in entity_pools),
    )


def build_query(
    params: WorkloadParams, multi_valued_targets: bool = False
) -> Query:
    """The global query implied by a parameter set.

    Predicates on class k realize the per-predicate selectivity
    ``R_ps^k ** (1 / N_p^k)`` (so the class's combined selectivity
    follows Table 2's R_ps law): even-indexed predicates test equality
    against category 0 of a ~1/selectivity-sized domain, odd-indexed
    ones use a threshold.  Paths reach class k through ``ref`` steps.
    With ``multi_valued_targets`` the (multi-valued) ``t1`` attribute of
    every class is projected as well.
    """
    targets: List[Path] = [Path.of("key"), Path.of(_target_attr(0))]
    if multi_valued_targets:
        targets.append(Path.of(_target_attr(1)))
    predicates: List[Predicate] = []
    prefix: Tuple[str, ...] = ()
    for k, cls_params in enumerate(params.classes):
        if k > 0:
            prefix = prefix + ("ref",)
            targets.append(Path(prefix + (_target_attr(0),)))
            if multi_valued_targets:
                targets.append(Path(prefix + (_target_attr(1),)))
        per_pred = _per_pred_selectivity(cls_params)
        for j in range(cls_params.n_predicates):
            path = Path(prefix + (_predicate_attr(j),))
            if _predicate_kind(j) is Op.EQ:
                predicates.append(Predicate(path=path, op=Op.EQ, operand=0))
            else:
                threshold = int(per_pred * VALUE_DOMAIN)
                predicates.append(
                    Predicate(path=path, op=Op.LT, operand=threshold)
                )
    return Query.conjunctive(_class_name(0), targets, predicates)
