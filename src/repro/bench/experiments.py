"""The paper's experiments (Figures 9-11) as reusable sweep drivers.

Each experiment fixes Table 2 defaults, adjusts one knob, draws
``samples`` parameter sets per setting (the paper uses 500), evaluates
CA/BL/PL with the analytic model, and averages total execution time and
response time — exactly the methodology of Section 4.1.

The drivers return plain data (:class:`SweepSeries`) so the benchmark
harness, tests and examples can all consume them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analytic.model import AnalyticModel
from repro.workload.params import WorkloadParams, sample_params

STRATEGIES = ("CA", "BL", "PL")

#: The paper's sample count per setting.
PAPER_SAMPLES = 500


@dataclass
class SweepPoint:
    """Averaged times of all strategies at one x-axis setting."""

    x: float
    total_time: Dict[str, float] = field(default_factory=dict)
    response_time: Dict[str, float] = field(default_factory=dict)


@dataclass
class SweepSeries:
    """One experiment's full sweep."""

    name: str
    x_label: str
    points: List[SweepPoint] = field(default_factory=list)

    def totals(self, strategy: str) -> List[float]:
        return [p.total_time[strategy] for p in self.points]

    def responses(self, strategy: str) -> List[float]:
        return [p.response_time[strategy] for p in self.points]

    def xs(self) -> List[float]:
        return [p.x for p in self.points]


def _run_sweep(
    name: str,
    x_label: str,
    xs: Sequence[float],
    make_model: Callable[[random.Random, float], AnalyticModel],
    samples: int,
    seed: int,
) -> SweepSeries:
    series = SweepSeries(name=name, x_label=x_label)
    for x in xs:
        totals = {s: 0.0 for s in STRATEGIES}
        responses = {s: 0.0 for s in STRATEGIES}
        rng = random.Random(seed)  # same parameter stream at every x
        for _ in range(samples):
            model = make_model(rng, x)
            for strategy, outcome in model.evaluate_all().items():
                totals[strategy] += outcome.total_time
                responses[strategy] += outcome.response_time
        series.points.append(
            SweepPoint(
                x=x,
                total_time={s: totals[s] / samples for s in STRATEGIES},
                response_time={s: responses[s] / samples for s in STRATEGIES},
            )
        )
    return series


def figure9(
    samples: int = PAPER_SAMPLES,
    object_counts: Sequence[int] = (1000, 3000, 5000, 7000, 9000),
    seed: int = 9,
    shared_network: bool = True,
) -> SweepSeries:
    """Figure 9: vary the average number of objects per constituent class."""

    def make(rng: random.Random, x: float) -> AnalyticModel:
        params = sample_params(rng, n_objects_range=(int(x), int(x) + 1000))
        return AnalyticModel(params, shared_network=shared_network)

    return _run_sweep(
        "figure9", "objects per constituent class", object_counts, make,
        samples, seed,
    )


def figure10(
    samples: int = PAPER_SAMPLES,
    db_counts: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    seed: int = 10,
    shared_network: bool = True,
) -> SweepSeries:
    """Figure 10: vary the number of component databases."""

    def make(rng: random.Random, x: float) -> AnalyticModel:
        params = sample_params(rng, n_dbs=int(x))
        return AnalyticModel(params, shared_network=shared_network)

    return _run_sweep(
        "figure10", "component databases", db_counts, make, samples, seed
    )


def figure11(
    samples: int = PAPER_SAMPLES,
    selectivities: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    seed: int = 11,
    shared_network: bool = True,
) -> SweepSeries:
    """Figure 11: vary the selectivity of the local predicates.

    The paper fixes N_o in [1000, 2000] for this experiment and sweeps
    the selectivity of one local predicate; we override the combined
    local selectivity on the root class.
    """

    def make(rng: random.Random, x: float) -> AnalyticModel:
        params = sample_params(rng, n_objects_range=(1000, 2000))
        return AnalyticModel(
            params, shared_network=shared_network, root_selectivity=x
        )

    return _run_sweep(
        "figure11", "local predicate selectivity", selectivities, make,
        samples, seed,
    )


EXPERIMENTS: Dict[str, Callable[..., SweepSeries]] = {
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
}
