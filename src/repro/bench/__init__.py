"""Experiment sweeps (Figures 9-11) and plain-text reporting."""

from repro.bench.experiments import (
    EXPERIMENTS,
    PAPER_SAMPLES,
    STRATEGIES,
    SweepPoint,
    SweepSeries,
    figure9,
    figure10,
    figure11,
)
from repro.bench.reporting import (
    ascii_chart,
    format_table,
    series_table,
    shape_report,
)

__all__ = [
    "EXPERIMENTS",
    "PAPER_SAMPLES",
    "STRATEGIES",
    "SweepPoint",
    "SweepSeries",
    "ascii_chart",
    "figure10",
    "figure11",
    "figure9",
    "format_table",
    "series_table",
    "shape_report",
]
