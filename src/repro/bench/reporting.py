"""Plain-text rendering of experiment sweeps (tables + ASCII series).

The benchmark harness prints, for every figure, the same rows/series the
paper plots, so runs can be eyeballed against the paper's charts.  It
also dumps execution traces (:func:`dump_traces`) so any benchmarked
schedule can be opened in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence

from repro.bench.experiments import STRATEGIES, SweepSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.report import ExecutionReport


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Render a padded text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row))
        )
    return "\n".join(lines)


def series_table(series: SweepSeries, metric: str = "total") -> str:
    """One figure's data as a table: x column + one column per strategy."""
    headers = [series.x_label] + [f"{s} {metric}(s)" for s in STRATEGIES]
    rows = []
    for point in series.points:
        values = (
            point.total_time if metric == "total" else point.response_time
        )
        rows.append(
            [f"{point.x:g}"] + [f"{values[s]:.3f}" for s in STRATEGIES]
        )
    return format_table(headers, rows)


def ascii_chart(
    series: SweepSeries, metric: str = "total", width: int = 50
) -> str:
    """A crude horizontal bar chart, one bar group per x setting."""
    values = {
        s: (series.totals(s) if metric == "total" else series.responses(s))
        for s in STRATEGIES
    }
    peak = max(max(vals) for vals in values.values()) or 1.0
    lines = [f"{series.name} — {metric} time"]
    for index, point in enumerate(series.points):
        lines.append(f"  {series.x_label} = {point.x:g}")
        for strategy in STRATEGIES:
            value = values[strategy][index]
            bar = "#" * max(1, int(round(value / peak * width)))
            lines.append(f"    {strategy:<3} {bar} {value:.3f}s")
    return "\n".join(lines)


def dump_traces(
    reports: Mapping[str, "ExecutionReport"],
    directory: str,
    jsonl: bool = False,
) -> List[str]:
    """Write each report's Chrome-trace JSON (and optionally its JSONL
    log) into *directory*; returns the written paths.

    File names are derived from the mapping keys (strategy names), with
    path-hostile characters replaced.
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    for name, report in reports.items():
        stem = "".join(c if c.isalnum() or c in "-_" else "_" for c in name)
        path = os.path.join(directory, f"{stem}.trace.json")
        with open(path, "w") as handle:
            handle.write(report.trace.to_chrome_json())
        written.append(path)
        if jsonl:
            path = os.path.join(directory, f"{stem}.jsonl")
            with open(path, "w") as handle:
                handle.write(report.trace.to_jsonl())
            written.append(path)
    return written


def utilization_table(reports: Mapping[str, "ExecutionReport"]) -> str:
    """Cross-strategy utilization summary: response vs critical path vs
    total busy time and queueing delay."""
    rows = []
    for name, report in reports.items():
        util = report.utilization
        rows.append([
            name,
            f"{report.response_time * 1000:.3f}",
            f"{util.critical_path_time * 1000:.3f}",
            f"{util.total_busy * 1000:.3f}",
            f"{util.total_queue_delay * 1000:.3f}",
        ])
    return format_table(
        ["strategy", "response (ms)", "critical path (ms)",
         "busy (ms)", "queued (ms)"],
        rows,
    )


def shape_report(series: SweepSeries) -> Dict[str, bool]:
    """Machine-checkable shape facts about one sweep (used by benches)."""
    facts: Dict[str, bool] = {}
    for strategy in STRATEGIES:
        totals = series.totals(strategy)
        responses = series.responses(strategy)
        facts[f"{strategy}_total_monotone_up"] = all(
            b >= a * 0.98 for a, b in zip(totals, totals[1:])
        )
        facts[f"{strategy}_response_monotone_up"] = all(
            b >= a * 0.98 for a, b in zip(responses, responses[1:])
        )
    last = series.points[-1]
    first = series.points[0]
    facts["localized_response_beats_ca_everywhere"] = all(
        p.response_time["BL"] < p.response_time["CA"]
        and p.response_time["PL"] < p.response_time["CA"]
        for p in series.points
    )
    facts["bl_total_below_pl_everywhere"] = all(
        p.total_time["BL"] <= p.total_time["PL"] * 1.02
        for p in series.points
    )
    facts["growth_BL_total"] = last.total_time["BL"] > first.total_time["BL"]
    facts["growth_CA_total"] = last.total_time["CA"] > first.total_time["CA"]
    return facts
