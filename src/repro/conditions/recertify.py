"""Incremental re-certification: monotone answer repair.

A degraded :class:`~repro.core.report.ExecutionReport` carries (a)
per-row discharge conditions and (b) a *repair state* — the exact
evidence the strategy certified over, plus the work it had to skip
(unreached local queries, undispatched check requests, stalled chase
chains, unshipped CA exports).  Given a recovered federation, the
:class:`ReCertifier` replays only that skipped work:

1. contact the sites named in outstanding conditions — nobody else;
2. fold the new evidence into the *original* evidence (verdict merges
   are order-independent, VIOLATED is sticky);
3. re-run the pure certification step over the merged evidence;
4. re-apply the flux demotion rule against the *current* evolution
   state, never touching rows the original answer already certified.

Because certification is a deterministic function of its evidence, a
fully healed repair reproduces the fault-free baseline byte for byte —
without re-running the query at any site that already answered.  The
contract is monotone: a row never loses certainty across a repair
(:class:`RepairError` if it would), and partially healed repairs return
an updated repair state so recovery can proceed in as many increments
as the federation needs.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.conditions.algebra import (
    FluxEpoch,
    NullAttr,
    SiteDown,
    SystemState,
    UncheckedCopy,
    attach,
    rank_mechanisms,
)
from repro.conditions.reasons import DegradationReason
from repro.core.tvl import TV
from repro.errors import ReproError


class RepairError(ReproError):
    """The repair contract could not be honored (or nothing to repair)."""


@dataclass
class RepairSummary:
    """What one recertification pass did, for explain/CLI/benches."""

    strategy: str
    #: Atoms from the degraded answer no longer outstanding (cleared by
    #: new evidence, isomeric coverage, or a closed evolution window).
    discharged: int = 0
    #: Maybe rows eliminated by new definitive evidence (the fault-free
    #: baseline never had them).
    refuted: int = 0
    #: Site/flux atoms still blocking rows after this pass.
    outstanding: int = 0
    #: Rows promoted maybe -> certain.
    promoted: int = 0
    #: Rows dropped from the answer entirely (== refuted rows).
    dropped: int = 0
    #: Repair exchanges only (2 per request/reply pair) — the number the
    #: recertify-vs-reexecute bench compares against a full re-run.
    messages: int = 0
    sites_contacted: Tuple[str, ...] = ()
    #: True when no repair state and no outstanding atoms remain: the
    #: answer now equals the fault-free baseline.
    fully_repaired: bool = False

    def describe(self) -> str:
        sites = ",".join(self.sites_contacted) or "-"
        return (
            f"repair[{self.strategy}]: promoted={self.promoted}"
            f" dropped={self.dropped} discharged={self.discharged}"
            f" outstanding={self.outstanding} messages={self.messages}"
            f" sites={sites}"
            + (" FULLY-REPAIRED" if self.fully_repaired else "")
        )


@dataclass
class LocalizedRepairState:
    """Everything a localized (BL/PL) repair needs — and nothing more.

    ``local_results``/``verdicts`` are the evidence the degraded run
    certified over; the ``skipped_*`` fields are the exact work units
    the fault plan forced the run to drop.  Repair = redo the skipped
    units against the healed federation, merge, re-certify.
    """

    strategy: str
    query: object
    use_signatures: bool
    columnar: bool
    #: Every decomposed per-site local query (down sites included).
    local_queries: Dict[str, object]
    #: Per-site local results actually obtained (pruned sites hold
    #: synthesized empty sets — they never need re-contact).
    local_results: Dict[str, object]
    #: Queried sites the fault plan made unreachable.
    down_sites: Tuple[str, ...]
    #: Check requests never dispatched: ``(source_site, CheckRequest)``.
    skipped_requests: Tuple[Tuple[str, object], ...]
    #: Chase chains stalled at an unreachable assistant:
    #: ``(site, orig_loid, orig_pred, holder, holder_class, remaining)``.
    skipped_chase: Tuple[Tuple, ...]
    #: VerdictIndex snapshot (cloned — safe to merge into).
    verdicts: object


@dataclass
class CentralizedRepairState:
    """A CA repair ships only the exports the degraded run skipped."""

    query: object
    columnar: bool
    involved_classes: Tuple[str, ...]
    #: global class -> site -> exported objects (the partial
    #: materialization input the degraded run fused).
    exports_by_class: Dict[str, Dict[str, list]]
    #: Sites whose exports were never shipped.
    skipped_sites: Tuple[str, ...]


def _leaf_atoms(row) -> List:
    out = []
    for condition in row.conditions:
        out.extend(condition.atoms())
    return out


class ReCertifier:
    """Monotone, incremental repair of a degraded execution report.

    *ctx* carries the reachability view the repair runs under: ``None``
    (the default the engine passes for a fully recovered federation)
    treats every present site as reachable; a live
    :class:`~repro.faults.injector.ExecutionContext` yields partial
    repairs that leave still-blocked conditions (and an updated repair
    state) in place.
    """

    def __init__(self, system, ctx=None):
        self.system = system
        self.ctx = ctx
        self.state = SystemState.current(system, ctx)

    # -- entry point ---------------------------------------------------

    def repair(self, report):
        """Repair *report*; returns a new, never-demoted ExecutionReport."""
        from repro.core.report import ExecutionReport

        original = report.results
        repair_state = getattr(report, "repair", None)
        protect = {row.goid for row in original.certain}

        if isinstance(repair_state, LocalizedRepairState):
            query = repair_state.query
            repaired, messages, contacted, new_state = (
                self._repair_localized(repair_state)
            )
            self._demote_flux(repaired, query, protect)
        elif isinstance(repair_state, CentralizedRepairState):
            query = repair_state.query
            repaired, messages, contacted, new_state = (
                self._repair_centralized(repair_state)
            )
            self._demote_flux(repaired, query, protect)
        else:
            degraded = not report.availability.complete
            has_conditions = any(
                row.conditions for row in original.all_results()
            )
            if degraded and not has_conditions:
                raise RepairError(
                    "report carries no repair state and no conditions; "
                    "re-run the query with conditions enabled to make "
                    "the answer repairable"
                )
            repaired = self._copy_results(original)
            messages, contacted, new_state = 0, (), None
            self._promote_flux(repaired)

        # Monotone contract: no row the original answer certified may
        # lose certainty, whatever the merged evidence now says.
        repaired_certain = {row.goid for row in repaired.certain}
        missing = sorted(
            goid.value for goid in protect - repaired_certain
        )
        if missing:
            raise RepairError(
                "repair would demote certified row(s): "
                + ", ".join(missing)
            )

        summary = self._summarize(
            report, original, repaired, messages, contacted, new_state
        )
        return self._build_report(
            ExecutionReport, report, repaired, summary, new_state
        )

    # -- localized (BL/PL) repair --------------------------------------

    def _repair_localized(self, state: LocalizedRepairState):
        from repro.core.binding_resolution import (
            ResolutionStats,
            resolve_missing_bindings,
        )
        from repro.core.certification import (
            SATISFIED,
            VIOLATED,
            certify,
        )
        from repro.core.strategies.base import (
            chase_blocked,
            plan_dispatch,
            run_checks_paired,
        )
        from repro.objectdb.local_query import BlockedAt, CheckReport
        from repro.resilience.failover import (
            covered_by_verdicts,
            pending_skips_of,
        )

        system = self.system
        verdicts = state.verdicts.clone()
        local_results = dict(state.local_results)
        messages = 0
        contacted: List[str] = []
        reports: List = []
        still_down: List[str] = []
        remaining_requests: List[Tuple[str, object]] = []

        def run_request(request) -> None:
            nonlocal messages
            for _req, rep in run_checks_paired(
                [request], system, columnar=state.columnar
            ):
                reports.append(rep)
                verdicts.add_report(rep)
            messages += 2
            if request.db_name not in contacted:
                contacted.append(request.db_name)

        # 1. Healed queried sites answer their original local queries;
        #    their maybe rows' unsolved items are dispatched as usual.
        for site in state.down_sites:
            if self.state.site_status(site) is not TV.TRUE:
                still_down.append(site)
                continue
            local_query = state.local_queries.get(site)
            if local_query is None:
                still_down.append(site)
                continue
            result = system.db(site).execute_local(
                local_query, columnar=state.columnar
            )
            local_results[site] = result
            contacted.append(site)
            messages += 2
            items = [
                item
                for row in result.maybe_rows
                for item in row.unsolved_items
            ]
            plan = plan_dispatch(
                site, items, system, use_signatures=state.use_signatures
            )
            for loid, predicate, verdict in plan.signature_verdicts:
                verdicts.add(loid, predicate, verdict)
            for request in plan.requests:
                if self.state.site_status(request.db_name) is TV.TRUE:
                    run_request(request)
                else:
                    remaining_requests.append((site, request))

        # 2. Originally skipped check requests: an isomeric copy's
        #    definitive verdict (collected elsewhere, or just merged)
        #    discharges the whole request without any contact.
        for src, request in state.skipped_requests:
            skips = pending_skips_of(system, src, request)
            if skips and all(
                covered_by_verdicts(system, verdicts, skip)
                for skip in skips
            ):
                continue
            if self.state.site_status(request.db_name) is TV.TRUE:
                run_request(request)
            else:
                remaining_requests.append((src, request))

        # 3. Stalled chase chains re-enter the chase from the exact
        #    block they stopped at — settled pairs need nothing.
        synthetic: List = []
        seen = set()
        for entry in state.skipped_chase:
            _site, orig_loid, orig_pred, holder, holder_cls, rest = entry
            if verdicts.get(orig_loid, orig_pred) in (
                SATISFIED,
                VIOLATED,
            ):
                continue
            key = (orig_loid, orig_pred, holder, rest)
            if key in seen:
                continue
            seen.add(key)
            synthetic.append(
                BlockedAt(
                    checked=orig_loid,
                    predicate=orig_pred,
                    holder=holder,
                    holder_class=holder_cls,
                    remaining=rest,
                )
            )

        remaining_chase: List[Tuple] = []
        chase_input = list(reports)
        if synthetic:
            chase_input.append(
                CheckReport(
                    db_name=system.global_site,
                    class_name="",
                    blocked=tuple(synthetic),
                )
            )
        if chase_input:
            predicates = state.query.all_predicates()
            max_rounds = max(
                (len(p.path) for p in predicates), default=0
            )
            deferred: List[Tuple] = []
            skipped_entries: List[Tuple] = []
            rounds = chase_blocked(
                chase_input,
                system,
                verdicts,
                max_rounds,
                ctx=self.ctx,
                deferred_skips=deferred,
                columnar=state.columnar,
                skip_log=skipped_entries,
            )
            for chase in rounds:
                messages += 2 * len(chase.requests)
                for request in chase.requests:
                    if request.db_name not in contacted:
                        contacted.append(request.db_name)
            for entry in skipped_entries:
                site, orig_loid, orig_pred = entry[0], entry[1], entry[2]
                holder, holder_cls, rest = entry[4], entry[5], entry[6]
                if verdicts.get(orig_loid, orig_pred) in (
                    SATISFIED,
                    VIOLATED,
                ):
                    continue
                shaped = (
                    site, orig_loid, orig_pred, holder, holder_cls, rest,
                )
                if shaped not in remaining_chase:
                    remaining_chase.append(shaped)

        # 4. Certification is pure: rerunning it over the merged
        #    evidence yields exactly what a fault-free run would have.
        answer = certify(
            state.query,
            system.global_schema,
            system.catalog,
            local_results,
            verdicts,
        )
        res_stats = ResolutionStats()
        resolve_missing_bindings(
            system, state.query, answer, ctx=self.ctx, stats=res_stats
        )
        messages += 2 * len(res_stats.fetches_by_site)
        for fetch_db in sorted(res_stats.fetches_by_site):
            if fetch_db not in contacted:
                contacted.append(fetch_db)

        # 5. Whatever is still blocked gets re-annotated, and an updated
        #    repair state keeps the answer repairable incrementally.
        new_state: Optional[LocalizedRepairState] = None
        if still_down or remaining_requests or remaining_chase:
            from repro.core.strategies.localized import annotate_site_loss

            down = set()
            skipped_goids: Dict[object, set] = {}
            for src, request in remaining_requests:
                down.add(request.db_name)
                for skip in pending_skips_of(system, src, request):
                    if not covered_by_verdicts(system, verdicts, skip):
                        skipped_goids.setdefault(skip.goid, set()).add(
                            request.db_name
                        )
            for entry in remaining_chase:
                down.add(entry[0])
            annotate_site_loss(
                system,
                state.query,
                local_results,
                answer,
                down,
                skipped_goids,
                conditions=True,
                queried_down=tuple(still_down),
            )
            new_state = LocalizedRepairState(
                strategy=state.strategy,
                query=state.query,
                use_signatures=state.use_signatures,
                columnar=state.columnar,
                local_queries=state.local_queries,
                local_results=local_results,
                down_sites=tuple(still_down),
                skipped_requests=tuple(remaining_requests),
                skipped_chase=tuple(remaining_chase),
                verdicts=verdicts,
            )
        return answer, messages, tuple(contacted), new_state

    # -- centralized (CA) repair ---------------------------------------

    def _repair_centralized(self, state: CentralizedRepairState):
        from repro.core.decompose import attributes_needed
        from repro.core.strategies.centralized import (
            demote_outerjoin_incomplete,
            evaluate_global_extent,
        )
        from repro.integration.outerjoin import materialize

        system = self.system
        schema = system.global_schema
        exports = {
            cls: dict(by_site)
            for cls, by_site in state.exports_by_class.items()
        }
        messages = 0
        contacted: List[str] = []
        still_down: List[str] = []
        for site in state.skipped_sites:
            if self.state.site_status(site) is not TV.TRUE:
                still_down.append(site)
                continue
            db = system.db(site)
            shipped = False
            for global_class in state.involved_classes:
                local_class = schema.constituent_class(site, global_class)
                if local_class is None:
                    continue
                needed = attributes_needed(
                    state.query, schema, global_class
                )
                local_needed = tuple(
                    a
                    for a in needed
                    if db.schema.cls(local_class).has_attribute(a)
                )
                exports.setdefault(global_class, {})[site] = (
                    db.scan_for_export(local_class, local_needed)
                )
                shipped = True
            if shipped:
                contacted.append(site)
                messages += 2

        extent = materialize(
            state.involved_classes,
            schema,
            system.catalog,
            exports,
            columnar=state.columnar,
        )
        answer = evaluate_global_extent(state.query, extent)
        new_state: Optional[CentralizedRepairState] = None
        if still_down:
            demote_outerjoin_incomplete(answer, still_down)
            new_state = CentralizedRepairState(
                query=state.query,
                columnar=state.columnar,
                involved_classes=state.involved_classes,
                exports_by_class=exports,
                skipped_sites=tuple(still_down),
            )
        return answer, messages, tuple(contacted), new_state

    # -- flux handling -------------------------------------------------

    def _open_hit_labels(self, query) -> List[str]:
        evo = getattr(self.system, "evolution", None)
        if evo is None or query is None:
            return []
        flux = evo.in_flux_view()
        if not flux.uncertified_attrs:
            return []
        from repro.evolution.seeding import referenced_attributes

        referenced = referenced_attributes(query)
        return [
            label
            for label, event in flux.open_events
            if any(a in referenced for a in event.touched_attrs)
        ]

    def _demote_flux(self, results, query, protect) -> int:
        """Re-apply the straddle rule against the *current* flux view.

        Rows certified by this repair while a referenced window is still
        open cannot be trusted; rows the original answer certified are
        protected (their certification predates the window — repair
        never demotes).
        """
        hit = self._open_hit_labels(query)
        if not hit:
            return 0
        from repro.core.results import ResultKind

        epoch = getattr(self.system, "schema_epoch", 0)
        atoms = [
            FluxEpoch(epoch=epoch, event=label) for label in hit
        ]
        notes = tuple(
            str(DegradationReason.schema_flux(label)) for label in hit
        )
        kept = []
        demoted = 0
        for row in results.certain:
            if row.goid in protect:
                kept.append(row)
                continue
            row.kind = ResultKind.MAYBE
            row.notes = row.notes + tuple(
                n for n in notes if n not in row.notes
            )
            attach(row, *atoms)
            results.maybe.append(row)
            demoted += 1
        results.certain[:] = kept
        # Rows still blocked on a site also wait on the open window: a
        # later repair may promote them only once *both* clear.
        for row in results.maybe:
            if any(
                isinstance(atom, (SiteDown, UncheckedCopy))
                for atom in _leaf_atoms(row)
            ):
                attach(row, *atoms)
        return demoted

    def _promote_flux(self, results) -> int:
        """Discharge flux-only rows whose windows have since closed.

        This is the state-free repair path: no site evidence is missing
        (``unsolved`` is empty, every atom is a FluxEpoch), so a closed
        window alone re-certifies the row — no contact needed.
        """
        from repro.core.results import ResultKind

        kept = []
        promoted = 0
        for row in results.maybe:
            atoms = _leaf_atoms(row)
            if (
                row.unsolved
                or not atoms
                or not all(isinstance(a, FluxEpoch) for a in atoms)
                or not all(
                    a.status(self.state) is TV.TRUE for a in atoms
                )
            ):
                kept.append(row)
                continue
            flux_notes = {
                str(DegradationReason.schema_flux(a.event)) for a in atoms
            }
            row.notes = tuple(
                n for n in row.notes if n not in flux_notes
            )
            row.conditions = ()
            row.kind = ResultKind.CERTAIN
            results.certain.append(row)
            promoted += 1
        results.maybe[:] = kept
        return promoted

    # -- bookkeeping ---------------------------------------------------

    @staticmethod
    def _copy_results(original):
        from repro.core.results import GlobalResult, ResultSet

        out = ResultSet(targets=original.targets)
        for row in original.all_results():
            out.add(
                GlobalResult(
                    goid=row.goid,
                    kind=row.kind,
                    bindings=dict(row.bindings),
                    unsolved=row.unsolved,
                    notes=row.notes,
                    conditions=row.conditions,
                )
            )
        return out

    def _summarize(
        self, report, original, repaired, messages, contacted, new_state
    ) -> RepairSummary:
        original_maybe = {row.goid: row for row in original.maybe}
        repaired_maybe = {row.goid: row for row in repaired.maybe}
        repaired_certain = {row.goid for row in repaired.certain}
        promoted = sum(
            1 for goid in original_maybe if goid in repaired_certain
        )
        dropped = sum(
            1
            for goid in original_maybe
            if goid not in repaired_certain
            and goid not in repaired_maybe
        )
        discharged = 0
        for goid, row in original_maybe.items():
            old_atoms = {
                atom
                for atom in _leaf_atoms(row)
                if not isinstance(atom, NullAttr)
            }
            if not old_atoms:
                continue
            if goid in repaired_maybe:
                new_atoms = set(_leaf_atoms(repaired_maybe[goid]))
                discharged += len(old_atoms - new_atoms)
            else:
                discharged += len(old_atoms)
        outstanding = sum(
            1
            for row in repaired.maybe
            for atom in _leaf_atoms(row)
            if not isinstance(atom, NullAttr)
            and atom.status(self.state) is not TV.TRUE
        )
        return RepairSummary(
            strategy=report.metrics.strategy,
            discharged=discharged,
            refuted=dropped,
            outstanding=outstanding,
            promoted=promoted,
            dropped=dropped,
            messages=messages,
            sites_contacted=tuple(contacted),
            fully_repaired=new_state is None and outstanding == 0,
        )

    def _build_report(
        self, report_cls, report, repaired, summary, new_state
    ):
        from repro.obs.spans import TraceEvent

        sampling, systematic = rank_mechanisms(repaired)
        availability = dataclasses.replace(
            report.availability,
            fully_recovered=(
                report.availability.fully_recovered
                or summary.fully_repaired
            ),
            maybe_sampling=sampling,
            maybe_systematic=systematic,
        )
        metrics = copy.copy(report.metrics)
        metrics.work = dataclasses.replace(report.metrics.work)
        metrics.work.messages += summary.messages
        metrics.work.conditions_discharged += summary.discharged
        metrics.certain_results = len(repaired.certain)
        metrics.maybe_results = len(repaired.maybe)
        repaired.sort()
        new_report = report_cls(
            results=repaired,
            metrics=metrics,
            availability=availability,
            repair=new_state,
            query_text=report.query_text,
            repair_summary=summary,
        )
        new_report.record_event(TraceEvent.of(
            "repair.recertify",
            strategy=summary.strategy,
            promoted=summary.promoted,
            dropped=summary.dropped,
            discharged=summary.discharged,
            outstanding=summary.outstanding,
            messages=summary.messages,
            sites=",".join(summary.sites_contacted),
        ))
        return new_report
