"""Structured degradation reasons behind the free-text ``notes`` strings.

Before this module, every degradation site rendered its own note string
inline (``localized.py``, ``centralized.py``, the engine's flux
demotion), which invited drift — three spellings of "this row is weaker
than a fault-free execution would make it".  :class:`DegradationReason`
is the single source of those strings now: each degradation path builds
a reason value and renders it with ``str()``, producing byte-identical
output to the historical notes (the back-compat contract — committed
bench baselines and tests match on these exact strings).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Tuple


class ReasonKind(enum.Enum):
    """Why a row (or a whole answer) was degraded."""

    #: A localized strategy could not reach a site holding certification
    #: evidence (an assistant copy, or a placement of the entity).
    SITE_UNAVAILABLE = "site-unavailable"
    #: CA's fused outerjoin ran over a partial materialization: with any
    #: extent missing, no row can be soundly certified.
    OUTERJOIN_INCOMPLETE = "outerjoin-incomplete"
    #: The execution straddled an open evolution window touching an
    #: attribute the query references.
    SCHEMA_FLUX = "schema-flux"


@dataclass(frozen=True)
class DegradationReason:
    """One structured degradation annotation.

    ``str()`` renders the exact historical note string for the kind, so
    existing note-matching tests and committed baselines are unaffected
    by the switch from inline f-strings to structured reasons.
    """

    kind: ReasonKind
    #: Sites involved (one for SITE_UNAVAILABLE; all skipped export
    #: sites for OUTERJOIN_INCOMPLETE; empty for SCHEMA_FLUX).
    sites: Tuple[str, ...] = ()
    #: Evolution window label (SCHEMA_FLUX only).
    label: str = ""

    @classmethod
    def site_unavailable(cls, site: str) -> "DegradationReason":
        return cls(kind=ReasonKind.SITE_UNAVAILABLE, sites=(site,))

    @classmethod
    def outerjoin_incomplete(
        cls, sites: Iterable[str]
    ) -> "DegradationReason":
        return cls(
            kind=ReasonKind.OUTERJOIN_INCOMPLETE,
            sites=tuple(sorted(sites)),
        )

    @classmethod
    def schema_flux(cls, label: str) -> "DegradationReason":
        return cls(kind=ReasonKind.SCHEMA_FLUX, label=label)

    def render(self) -> str:
        """The historical note string, byte for byte."""
        if self.kind is ReasonKind.SITE_UNAVAILABLE:
            return f"uncertified: site {self.sites[0]} unavailable"
        if self.kind is ReasonKind.OUTERJOIN_INCOMPLETE:
            return (
                "uncertified: outerjoin incomplete (site "
                + ", ".join(self.sites)
                + " unavailable)"
            )
        return f"uncertified: schema in flux ({self.label})"

    def __str__(self) -> str:
        return self.render()
