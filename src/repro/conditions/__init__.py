"""Conditional degraded answers and incremental re-certification.

The paper's 3VL collapses every source of uncertainty — a NULL
attribute, a down site, an unchecked isomeric copy, a schema-flux
epoch — into one undifferentiated *maybe* bucket, so a degraded answer
can never be repaired without a full re-execution.  This package
upgrades that to c-table-style conditional answers (Grahne,
arXiv:1304.0959): every maybe/uncertified row carries the *condition*
under which it holds, as a conjunction of machine-dischargeable atoms
evaluated in 3VL against the live federation state, and a
:class:`~repro.conditions.recertify.ReCertifier` turns recovery into
incremental, monotone *answer repair* — re-contacting only the sites
named in outstanding conditions, never re-running the full query and
never demoting a row.

Residual maybe rows are ranked by missingness mechanism (Bertossi,
arXiv:2604.06520): rows blocked only by genuine data nulls are
*sampling* missingness (no recovery will ever certify them), while
rows blocked by a down site, an unchecked copy or an open evolution
window are *systematic* (dischargeable once the federation heals).
"""

from repro.conditions.algebra import (
    And,
    Condition,
    FluxEpoch,
    NullAttr,
    Or,
    SiteDown,
    SystemState,
    UncheckedCopy,
    attach,
    condition_sites,
    mechanism,
    rank_mechanisms,
)
from repro.conditions.reasons import DegradationReason, ReasonKind
from repro.conditions.recertify import (
    CentralizedRepairState,
    LocalizedRepairState,
    ReCertifier,
    RepairError,
    RepairSummary,
)

__all__ = [
    "And",
    "CentralizedRepairState",
    "Condition",
    "DegradationReason",
    "FluxEpoch",
    "LocalizedRepairState",
    "NullAttr",
    "Or",
    "ReCertifier",
    "ReasonKind",
    "RepairError",
    "RepairSummary",
    "SiteDown",
    "SystemState",
    "UncheckedCopy",
    "attach",
    "condition_sites",
    "mechanism",
    "rank_mechanisms",
]
