"""The condition algebra: dischargeable provenance for degraded rows.

A *condition* states what must clear before a maybe/uncertified row can
be promoted.  Atoms name the four degradation causes of this system:

* :class:`NullAttr` — a predicate stayed UNKNOWN on genuine data (a
  NULL attribute somewhere in the federation).  No recovery discharges
  it: the fault-free baseline is maybe too ("sampling" missingness).
* :class:`SiteDown` — a site holding certification evidence (an extent
  CA needed, or a placement of the entity) was unreachable.
* :class:`UncheckedCopy` — an assistant copy's check could not be
  dispatched, so its verdict is missing.
* :class:`FluxEpoch` — the execution straddled an open evolution window
  touching a referenced attribute.

Conditions evaluate in 3VL against a live :class:`SystemState`:
``status()`` answers "is the blocking cause cleared *now*?" — TRUE when
discharge is possible (site reachable again, window closed), FALSE when
it never will be (a genuine null; a site formally excised from the
federation), UNKNOWN while still blocked.  The atoms attached to one
row form an implicit conjunction: the row can be fully re-certified
only when every atom's status is TRUE (:func:`And` / strong-Kleene
``all3``), which is exactly the monotone repair contract the
:class:`~repro.conditions.recertify.ReCertifier` enforces.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Tuple

from repro.core.tvl import TV, all3, any3
from repro.objectdb.ids import GOid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import DistributedSystem
    from repro.faults.injector import ExecutionContext

#: Missingness mechanisms (Bertossi, arXiv:2604.06520): MCAR-ish
#: sampling nulls vs systematic, recovery-dischargeable causes.
SAMPLING = "sampling"
SYSTEMATIC = "systematic"


@dataclass(frozen=True)
class SystemState:
    """A live view of the federation a condition evaluates against.

    *ctx* carries reachability (``None`` means every present site is
    reachable — the fully-healed view the re-certifier defaults to);
    *flux_labels* are the evolution windows currently open.
    """

    system: "DistributedSystem"
    ctx: Optional["ExecutionContext"] = None
    flux_labels: Tuple[str, ...] = ()
    epoch: int = 0

    @classmethod
    def current(
        cls,
        system: "DistributedSystem",
        ctx: Optional["ExecutionContext"] = None,
    ) -> "SystemState":
        """Snapshot the federation as it stands right now."""
        evo = getattr(system, "evolution", None)
        labels: Tuple[str, ...] = ()
        if evo is not None:
            labels = tuple(evo.in_flux_view().labels)
        return cls(
            system=system,
            ctx=ctx,
            flux_labels=labels,
            epoch=getattr(system, "schema_epoch", 0),
        )

    def site_status(self, site: str) -> TV:
        """Whether a site-blocked cause is cleared (3VL).

        TRUE: the site is present and reachable — dischargeable now.
        FALSE: the site was formally excised from the federation — the
        evidence is gone for good.  UNKNOWN: present but unreachable.
        """
        if site not in self.system.databases:
            return TV.FALSE
        if self.ctx is None:
            return TV.TRUE
        return (
            TV.TRUE
            if self.ctx.reachable(self.system.global_site, site)
            else TV.UNKNOWN
        )

    def flux_status(self, label: str) -> TV:
        """TRUE once the named evolution window has closed."""
        return TV.UNKNOWN if label in self.flux_labels else TV.TRUE


class Condition(abc.ABC):
    """A 3VL-evaluable discharge condition (atom or connective)."""

    @abc.abstractmethod
    def status(self, state: SystemState) -> TV:
        """Is the blocking cause cleared under *state*?"""

    @abc.abstractmethod
    def atoms(self) -> Iterator["Condition"]:
        """The leaf atoms of this condition, in order."""

    @abc.abstractmethod
    def sort_key(self) -> Tuple:
        """Deterministic ordering key (atoms sort stably in rows)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Compact one-token rendering for explain/CLI output."""

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class NullAttr(Condition):
    """A predicate left UNKNOWN by a genuine NULL attribute.

    *site* is the component database whose local evaluation observed
    the null (empty when only the fused global merge saw it, as in
    CA's evaluation over the materialized extent); *attr* names the
    unsolved predicate.  Never dischargeable — the fault-free baseline
    carries the same UNKNOWN.
    """

    site: str
    goid: GOid
    attr: str

    def status(self, state: SystemState) -> TV:
        return TV.FALSE

    def atoms(self) -> Iterator[Condition]:
        yield self

    def sort_key(self) -> Tuple:
        return ("null", self.site, self.goid.value, self.attr)

    def describe(self) -> str:
        where = self.site or "*"
        return f"null[{where}:{self.goid.value}:{self.attr}]"


@dataclass(frozen=True)
class SiteDown(Condition):
    """A site holding certification evidence was unreachable.

    *window* is the outage interval observed at dispatch time, kept for
    provenance (discharge consults the live state, not the window).
    """

    site: str
    window: Tuple[float, float] = (0.0, 0.0)

    def status(self, state: SystemState) -> TV:
        return state.site_status(self.site)

    def atoms(self) -> Iterator[Condition]:
        yield self

    def sort_key(self) -> Tuple:
        return ("site-down", self.site, "", "")

    def describe(self) -> str:
        return f"site-down[{self.site}]"


@dataclass(frozen=True)
class UncheckedCopy(Condition):
    """An assistant copy whose check verdict is missing."""

    site: str
    goid: GOid

    def status(self, state: SystemState) -> TV:
        return state.site_status(self.site)

    def atoms(self) -> Iterator[Condition]:
        yield self

    def sort_key(self) -> Tuple:
        return ("unchecked", self.site, self.goid.value, "")

    def describe(self) -> str:
        return f"unchecked[{self.site}:{self.goid.value}]"


@dataclass(frozen=True)
class FluxEpoch(Condition):
    """The execution straddled an open evolution window.

    *epoch* pins the schema epoch the query ran at; *event* is the
    window's label (e.g. ``"drop:DB2.Student.email"``).
    """

    epoch: int
    event: str

    def status(self, state: SystemState) -> TV:
        return state.flux_status(self.event)

    def atoms(self) -> Iterator[Condition]:
        yield self

    def sort_key(self) -> Tuple:
        return ("flux", self.event, str(self.epoch), "")

    def describe(self) -> str:
        return f"flux[{self.event}@{self.epoch}]"


@dataclass(frozen=True)
class And(Condition):
    """Strong-Kleene conjunction: dischargeable when every part is."""

    parts: Tuple[Condition, ...]

    def status(self, state: SystemState) -> TV:
        return all3(part.status(state) for part in self.parts)

    def atoms(self) -> Iterator[Condition]:
        for part in self.parts:
            yield from part.atoms()

    def sort_key(self) -> Tuple:
        return ("and",) + tuple(p.sort_key() for p in self.parts)

    def describe(self) -> str:
        return "(" + " & ".join(p.describe() for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Condition):
    """Strong-Kleene disjunction: dischargeable when any part is."""

    parts: Tuple[Condition, ...]

    def status(self, state: SystemState) -> TV:
        return any3(part.status(state) for part in self.parts)

    def atoms(self) -> Iterator[Condition]:
        for part in self.parts:
            yield from part.atoms()

    def sort_key(self) -> Tuple:
        return ("or",) + tuple(p.sort_key() for p in self.parts)

    def describe(self) -> str:
        return "(" + " | ".join(p.describe() for p in self.parts) + ")"


def attach(row, *conditions: Condition) -> None:
    """Merge atoms into a row's condition conjunction (dedup, sorted).

    A row's ``conditions`` tuple is an implicit conjunction; attaching
    keeps it deduplicated and deterministically ordered regardless of
    the order degradation paths ran in.
    """
    merged = {c: None for c in row.conditions}
    for condition in conditions:
        merged.setdefault(condition, None)
    row.conditions = tuple(sorted(merged, key=lambda c: c.sort_key()))


def condition_sites(conditions: Iterable[Condition]) -> Tuple[str, ...]:
    """The sites named by site-blocked atoms, sorted (repair targets)."""
    sites = set()
    for condition in conditions:
        for atom in condition.atoms():
            if isinstance(atom, (SiteDown, UncheckedCopy)):
                sites.add(atom.site)
    return tuple(sorted(sites))


def mechanism(conditions: Iterable[Condition]) -> str:
    """Classify one row's missingness mechanism.

    A row blocked *only* by genuine nulls is sampling missingness
    (MCAR-ish: recovery never certifies it); any site/copy/flux atom
    makes it systematic (dischargeable once the federation heals).
    Rows with no conditions at all — fault-free maybes executed with
    conditions disabled — default to sampling.
    """
    for condition in conditions:
        for atom in condition.atoms():
            if not isinstance(atom, NullAttr):
                return SYSTEMATIC
    return SAMPLING


def rank_mechanisms(results) -> Tuple[int, int]:
    """(sampling, systematic) counts over a ResultSet's maybe rows."""
    sampling = systematic = 0
    for row in results.maybe:
        if mechanism(row.conditions) == SYSTEMATIC:
            systematic += 1
        else:
            sampling += 1
    return sampling, systematic
