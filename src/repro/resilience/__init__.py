"""Resilient dispatch: site health, circuit breakers, replica failover.

The fault layer (:mod:`repro.faults`) injects deterministic outages and
link degradation; this package makes the strategies *route around* them
instead of merely degrading:

* :mod:`repro.resilience.health` — :class:`SiteHealthRegistry`: per-site
  consecutive-failure counts and latency EWMAs drive a deterministic
  circuit breaker (closed -> open after N failures -> half-open probe
  after a seeded cooldown measured in suppressed contact attempts);
* :mod:`repro.resilience.failover` — global-site relay routing for dead
  component links, mapping-table-backed demotion decisions (a skipped
  check demotes its row only when *every* isomeric copy is unreachable
  or indefinite), and hedged dispatch racing.

See the "Failover & health" section of ``docs/FAULTS.md``.
"""

from repro.resilience.failover import (
    DIRECT,
    RELAY,
    HedgeDecision,
    PendingSkip,
    covered_by_verdicts,
    covered_pairs,
    pending_skips_of,
    plan_hedge,
    relay_route,
)
from repro.resilience.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    SiteHealth,
    SiteHealthRegistry,
)

__all__ = [
    "CLOSED",
    "DIRECT",
    "HALF_OPEN",
    "OPEN",
    "RELAY",
    "BreakerPolicy",
    "HedgeDecision",
    "PendingSkip",
    "SiteHealth",
    "SiteHealthRegistry",
    "covered_by_verdicts",
    "covered_pairs",
    "pending_skips_of",
    "plan_hedge",
    "relay_route",
]
