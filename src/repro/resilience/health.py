"""Per-site health tracking and the deterministic circuit breaker.

The fault layer negotiates every link with a full timeout+retry ladder,
even when earlier negotiations already proved the destination dead.  A
:class:`SiteHealthRegistry` closes that gap: it observes every fresh
negotiation outcome an :class:`~repro.faults.injector.ExecutionContext`
records and drives one circuit breaker per destination site:

``closed``
    Normal operation.  Consecutive failures are counted; reaching
    :attr:`BreakerPolicy.failure_threshold` opens the circuit.
``open``
    Contacts are suppressed without paying the retry ladder (the
    context synthesizes an ``open``-outcome negotiation with zero
    wait).  Each suppressed contact decrements a *seeded* cooldown
    counter — cooldowns are measured in suppressed contact attempts,
    not wall-clock time, so executions stay byte-deterministic.
``half-open``
    The cooldown expired: exactly one probe negotiation is allowed
    through.  Success closes the circuit; failure re-opens it with a
    freshly seeded cooldown.

Determinism: the only randomness is the cooldown jitter, drawn from
``random.Random(f"breaker:{seed}:{site}:{opened_count}")`` — a function
of the execution's fault seed, the site, and how often this breaker has
opened.  No wall-clock, no ordering dependence beyond the (already
deterministic) order in which strategies negotiate links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import FaultPlanError

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Knobs of the per-site circuit breaker."""

    #: Consecutive fresh-negotiation failures that open the circuit.
    failure_threshold: int = 3
    #: Base cooldown, counted in suppressed contact attempts.
    cooldown_attempts: int = 2
    #: Seeded extra cooldown attempts in ``[0, cooldown_jitter]``.
    cooldown_jitter: int = 2
    #: Smoothing factor of the per-site latency EWMA.
    ewma_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise FaultPlanError(
                f"breaker failure_threshold {self.failure_threshold} < 1"
            )
        if self.cooldown_attempts < 0 or self.cooldown_jitter < 0:
            raise FaultPlanError("breaker cooldown must be non-negative")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise FaultPlanError(
                f"breaker ewma_alpha {self.ewma_alpha} outside (0, 1]"
            )


@dataclass
class SiteHealth:
    """Mutable health record of one destination site."""

    site: str
    state: str = CLOSED
    consecutive_failures: int = 0
    successes: int = 0
    failures: int = 0
    #: Contacts suppressed while the circuit was open.
    suppressed: int = 0
    #: EWMA of the fault wait paid per *successful* fresh negotiation
    #: (seconds).  Failures never fold their (often defaulted-to-zero)
    #: latency into the EWMA — a flaky site must not drift toward a
    #: lower EWMA and win the latency tiebreak in :meth:`rank`.
    latency_ewma_s: float = 0.0
    #: Number of latency observations folded into the EWMA.  The first
    #: observation seeds the EWMA outright instead of blending against
    #: the 0.0 initial value.
    ewma_samples: int = 0
    #: Suppressed attempts left before the next half-open probe.
    cooldown_remaining: int = 0
    #: How many times this breaker has opened (seeds the cooldown).
    opened_count: int = 0
    #: Administratively opened (formal site leave): suppressed contacts
    #: never count down to a half-open probe — only an explicit
    #: :meth:`SiteHealthRegistry.reset` (formal rejoin) recovers.
    administrative: bool = False


class SiteHealthRegistry:
    """All site breakers of one execution, plus health-based ranking."""

    def __init__(
        self, policy: BreakerPolicy = BreakerPolicy(), seed: int = 0
    ) -> None:
        self.policy = policy
        self.seed = seed
        self._sites: Dict[str, SiteHealth] = {}
        #: (site, from_state, to_state) in occurrence order.
        self.transitions: List[Tuple[str, str, str]] = []

    def health(self, site: str) -> SiteHealth:
        record = self._sites.get(site)
        if record is None:
            record = self._sites[site] = SiteHealth(site=site)
        return record

    # --- breaker ------------------------------------------------------------

    def allow(self, site: str) -> bool:
        """Whether a fresh negotiation to *site* may proceed.

        Open circuits consume one cooldown attempt and refuse; an
        expired cooldown half-opens the circuit and lets one probe
        through.
        """
        record = self.health(site)
        if record.state != OPEN:
            return True
        if record.administrative:
            # Formal leave: no cooldown, no probes — the site is gone
            # until a formal rejoin resets the breaker.
            record.suppressed += 1
            return False
        if record.cooldown_remaining > 0:
            record.cooldown_remaining -= 1
            record.suppressed += 1
            return False
        self._transition(record, HALF_OPEN)
        return True

    def record(self, site: str, ok: bool, latency_s: float = 0.0) -> None:
        """Fold one fresh negotiation outcome into *site*'s health."""
        record = self.health(site)
        if ok:
            # Fold latency on successes only: failure records carry a
            # defaulted latency of 0.0 (the wait is accounted elsewhere)
            # and must not drag the EWMA down.  Seed with the first
            # observation instead of blending against the 0.0 initial.
            if record.ewma_samples == 0:
                record.latency_ewma_s = latency_s
            else:
                alpha = self.policy.ewma_alpha
                record.latency_ewma_s += alpha * (
                    latency_s - record.latency_ewma_s
                )
            record.ewma_samples += 1
            record.successes += 1
            record.consecutive_failures = 0
            if record.state != CLOSED:
                self._transition(record, CLOSED)
            return
        record.failures += 1
        record.consecutive_failures += 1
        if record.state == HALF_OPEN or (
            record.state == CLOSED
            and record.consecutive_failures >= self.policy.failure_threshold
        ):
            self._open(record)

    def _open(self, record: SiteHealth) -> None:
        record.opened_count += 1
        rng = random.Random(
            f"breaker:{self.seed}:{record.site}:{record.opened_count}"
        )
        record.cooldown_remaining = (
            self.policy.cooldown_attempts
            + rng.randint(0, self.policy.cooldown_jitter)
        )
        self._transition(record, OPEN)

    def _transition(self, record: SiteHealth, to_state: str) -> None:
        self.transitions.append((record.site, record.state, to_state))
        record.state = to_state

    # --- administrative hooks (formal leave / rejoin) -----------------------

    def force_open(self, site: str) -> None:
        """Open *site*'s breaker administratively (a formal leave).

        Unlike a failure-driven open, an administrative open has no
        cooldown: contacts are suppressed indefinitely (never a
        half-open probe) until :meth:`reset` is called.  Idempotent.
        """
        record = self.health(site)
        record.administrative = True
        record.cooldown_remaining = 0
        if record.state != OPEN:
            record.opened_count += 1
            self._transition(record, OPEN)

    def reset(self, site: str) -> None:
        """Restore *site* to a fresh closed breaker (a formal rejoin).

        A rejoined site is contacted immediately: the open/half-open
        state, accumulated consecutive failures, pending cooldown and
        the administrative flag are all cleared (lifetime counters are
        kept for observability).  Without this hook a formally rejoined
        site would sit behind a stale open circuit until the cooldown
        expired and a probe happened to succeed.
        """
        record = self._sites.get(site)
        if record is None:
            return
        if record.state != CLOSED:
            self._transition(record, CLOSED)
        record.consecutive_failures = 0
        record.cooldown_remaining = 0
        record.administrative = False

    # --- queries ------------------------------------------------------------

    def state(self, site: str) -> str:
        record = self._sites.get(site)
        return record.state if record is not None else CLOSED

    def rank(self, sites: Iterable[str]) -> List[str]:
        """*sites* ordered healthiest-first, deterministically.

        Closed before half-open before open; fewer consecutive failures
        first; lower latency EWMA first; site name breaks ties.
        """
        order = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

        def key(site: str):
            record = self._sites.get(site) or SiteHealth(site=site)
            return (
                order[record.state],
                record.consecutive_failures,
                record.latency_ewma_s,
                site,
            )

        return sorted(sites, key=key)

    def snapshot(self) -> Tuple[Tuple[str, str], ...]:
        """(site, state) for every site not in the default closed state,
        sorted by site — the Availability annotation's breaker view."""
        return tuple(
            (site, record.state)
            for site, record in sorted(self._sites.items())
            if record.state != CLOSED
        )

    @property
    def suppressed_total(self) -> int:
        return sum(r.suppressed for r in self._sites.values())
