"""Replica-aware failover of assistant checks, plus hedged dispatch.

The paper's redundancy premise — isomeric copies at multiple sites, any
of which can certify a maybe result — already shapes phase O: dispatch
fans a check out to *every* answerable copy, and certification ORs the
verdicts across copies.  What the fault layer lacked was route
awareness: a check is addressed to the copy's home site over the
``src -> dst`` component link, and when that one link is dead the check
used to be skipped even though the *site* (and therefore the copy) was
perfectly reachable through the global processing site, which holds the
replicated GOid mapping tables and receives every check report anyway.

This module supplies the routing half of the resilience layer:

* :func:`relay_route` — the global-site relay for a dead component
  link (breaker-aware, negotiated like any other link);
* :func:`pending_skips_of` / :func:`covered_by_verdicts` — the
  mapping-table consult that demotes a skipped check to "uncertified"
  only when *no* isomeric copy of the affected entity produced a
  definitive verdict (i.e. every copy was unreachable or indefinite).
  The same pair powers *answer repair*: skips that stay uncovered are
  carried in the report's repair state as ``UncheckedCopy`` condition
  atoms, and the :class:`~repro.conditions.recertify.ReCertifier`
  re-applies :func:`covered_by_verdicts` against its merged verdict
  index first — so a sibling copy's later verdict discharges the atom
  with zero messages to the dead site;
* :func:`plan_hedge` — hedged dispatch: when a link negotiation is
  slower than the policy's seeded hedge delay, race a duplicate of the
  in-flight request through the relay and take the faster route,
  cost-accounting the loser.

Everything is computed analytically from negotiation outcomes — no
wall-clock — so failover and hedging preserve byte-determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Set, Tuple

from repro.core.certification import SATISFIED, VIOLATED, VerdictIndex
from repro.objectdb.ids import GOid
from repro.objectdb.local_query import CheckRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import DistributedSystem
    from repro.faults.injector import ExecutionContext, Negotiation

#: Hedge race outcomes.
DIRECT = "direct"
RELAY = "relay"


@dataclass(frozen=True)
class PendingSkip:
    """One (entity, predicate) check pair whose direct dispatch failed.

    Recorded when a check request could not reach its destination and no
    relay route existed; resolved after verdict collection, when the
    GOid mapping tells us whether any isomeric copy answered anyway.
    """

    src: str
    dst: str
    global_class: str
    goid: GOid
    predicate: object


def relay_route(
    ctx: "ExecutionContext", system: "DistributedSystem", dst: str
) -> Optional[str]:
    """The relay site for a dead ``* -> dst`` link, or None.

    Component sites ship their local results to the global processing
    site regardless, so the relay re-issues the request over the
    ``global -> dst`` link (negotiated and breaker-gated like any other
    link; the ladder is paid at most once per execution).
    """
    if dst == system.global_site:
        return None
    if ctx.reachable(system.global_site, dst):
        return system.global_site
    return None


def pending_skips_of(
    system: "DistributedSystem", src: str, request: CheckRequest
) -> List[PendingSkip]:
    """The (entity, predicate) pairs a failed *request* leaves uncovered."""
    g_cls = system.global_schema.global_class_of(
        request.db_name, request.class_name
    )
    if g_cls is None:
        return []
    skips: List[PendingSkip] = []
    for loid in request.loids:
        goid = system.catalog.goid_of(g_cls, loid)
        if goid is None:
            continue
        for predicate in request.predicates:
            skips.append(PendingSkip(
                src=src,
                dst=request.db_name,
                global_class=g_cls,
                goid=goid,
                predicate=predicate,
            ))
    return skips


def covered_by_verdicts(
    system: "DistributedSystem",
    verdicts: VerdictIndex,
    skip: PendingSkip,
) -> bool:
    """Whether some isomeric copy settled the skipped pair anyway.

    Certification ORs verdicts over every copy of an entity, so a
    definitive (satisfied/violated) verdict from *any* live copy makes
    the lost check redundant: the pair is certified exactly as a
    fault-free run would certify it (copies are consistent).  Only pairs
    with no definitive verdict from any copy demote the row.
    """
    table = system.catalog.table(skip.global_class)
    placements = table.loids_of(skip.goid)
    for db_name in sorted(placements):
        verdict = verdicts.get(placements[db_name], skip.predicate)
        if verdict in (SATISFIED, VIOLATED):
            return True
    return False


@dataclass(frozen=True)
class HedgeDecision:
    """The analytic outcome of racing a slow direct link against the
    relay route."""

    src: str
    dst: str
    via: str
    delay_s: float
    direct_wait_s: float
    relay_wait_s: float  # includes the hedge delay; inf when relay dead
    winner: str  # DIRECT or RELAY

    @property
    def relay_won(self) -> bool:
        return self.winner == RELAY


def plan_hedge(
    ctx: "ExecutionContext",
    system: "DistributedSystem",
    src: str,
    dst: str,
    negotiation: "Negotiation",
) -> Optional[HedgeDecision]:
    """Decide the hedge race for one link, or None when no hedge fires.

    A hedge fires when the policy sets ``hedge_delay_s``, the direct
    negotiation eventually succeeds but only after a fault wait longer
    than the (seeded, jittered) effective delay.  The duplicate request
    goes through the global-site relay; whichever route completes first
    wins, and the loser's request message is still paid for.
    """
    delay = ctx.hedge_delay(src, dst)
    if delay is None or not negotiation.ok:
        return None
    if negotiation.wait_s <= delay:
        return None
    if src == system.global_site or dst == system.global_site:
        return None
    relay = ctx.contact(system.global_site, dst)
    if relay.ok:
        relay_wait = delay + relay.wait_s
        winner = RELAY if relay_wait < negotiation.wait_s else DIRECT
    else:
        relay_wait = float("inf")
        winner = DIRECT
    return HedgeDecision(
        src=src,
        dst=dst,
        via=system.global_site,
        delay_s=delay,
        direct_wait_s=negotiation.wait_s,
        relay_wait_s=relay_wait,
        winner=winner,
    )


def covered_pairs(
    system: "DistributedSystem",
    requests: Iterable[CheckRequest],
) -> Set[Tuple[GOid, object]]:
    """The (entity, predicate) pairs a set of dispatched requests covers."""
    pairs: Set[Tuple[GOid, object]] = set()
    for request in requests:
        for skip in pending_skips_of(system, request.db_name, request):
            pairs.add((skip.goid, skip.predicate))
    return pairs
