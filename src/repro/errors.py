"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish schema problems from query problems or
simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class SchemaError(ReproError):
    """A component or global schema is malformed or inconsistent.

    Raised, for example, when a complex attribute references an undefined
    class, when two attributes with the same name are declared on one class,
    or when schema integration is asked to integrate classes that do not
    exist.
    """


class UnknownClassError(SchemaError):
    """A class name was referenced that is not defined in the schema."""

    def __init__(self, class_name: str, where: str = "schema") -> None:
        super().__init__(f"class {class_name!r} is not defined in {where}")
        self.class_name = class_name
        self.where = where


class UnknownAttributeError(SchemaError):
    """An attribute name was referenced that a class does not define."""

    def __init__(self, class_name: str, attribute: str) -> None:
        super().__init__(
            f"class {class_name!r} does not define attribute {attribute!r}"
        )
        self.class_name = class_name
        self.attribute = attribute


class ObjectStoreError(ReproError):
    """A component database storage operation failed.

    Raised for duplicate LOids, references to non-existent objects, or
    objects whose values do not conform to their class definition.
    """


class QueryError(ReproError):
    """A global or local query is malformed with respect to its schema.

    Raised when the range class is unknown, a path expression does not
    type-check against the composition hierarchy, or a predicate compares
    a complex attribute with a primitive constant.
    """


class MappingError(ReproError):
    """A GOid mapping table operation failed (duplicate or missing entry)."""


class SqlxSyntaxError(ReproError):
    """The SQL/X front-end failed to tokenize or parse a query string."""

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state.

    Raised for cyclic activity graphs, negative durations, or transfers
    between unknown sites.
    """


class WorkloadError(ReproError):
    """A workload parameter set is out of its documented range."""


class FaultPlanError(ReproError):
    """A fault plan is malformed (negative windows, bad probabilities)."""


class EvolutionError(ReproError):
    """A federation evolution plan or transition is invalid.

    Raised for malformed evolution specs, events targeting unknown
    sites/classes/attributes, or transitions that would leave the
    federation inconsistent (e.g. removing a global class's last
    constituent, or renaming a correspondence key attribute).
    """


class UnavailableError(ReproError):
    """A site could not be reached and the execution policy is fail-fast.

    Raised by the strategies when every attempt (initial try plus
    retries) to contact a component database failed under the active
    :class:`~repro.faults.FaultPlan` and the
    :class:`~repro.faults.ExecutionPolicy` forbids degrading to a
    partial answer.
    """

    def __init__(self, site: str, attempts: int = 1, reason: str = "down") -> None:
        super().__init__(
            f"site {site!r} unavailable after {attempts} attempt(s) "
            f"({reason}); policy is fail-fast"
        )
        self.site = site
        self.attempts = attempts
        self.reason = reason


class ExecutionTimeout(ReproError):
    """The cumulative fault-handling wait exceeded the policy deadline.

    Raised regardless of the fail-fast/degrade setting: the deadline is
    a hard cap on how long one execution may spend in timeouts and
    backoff waits before the caller gets an answer (or this error).
    """

    def __init__(self, waited_s: float, deadline_s: float) -> None:
        super().__init__(
            f"execution spent {waited_s:.3f}s waiting on unavailable "
            f"sites, exceeding the policy deadline of {deadline_s:.3f}s"
        )
        self.waited_s = waited_s
        self.deadline_s = deadline_s
