"""Weighted query mixes: which template the next query comes from.

A :class:`QueryMix` is a weighted set of
:class:`~repro.traffic.templates.QueryTemplate`\\ s.  Each worker draws
templates from the mix with its own seeded RNG, so the mix composition
is statistical per worker but the full draw sequence — and therefore
the whole workload — is a pure function of the root seed.

:func:`default_mix` derives the standard three-template mix from a
generated workload (see ``repro.workload.generator``):

* ``point`` — key-equality lookups over the root extent (the OLTP-ish
  end: tiny answers, heavy decomposition-cache reuse);
* ``scan`` — a range scan on the root target attribute (bigger answers,
  exercises maybe-result chasing);
* ``paper`` — the workload's own Table 2 query with its threshold
  operands re-drawn per execution (the paper's analytical shape under
  varying selectivity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.query import Op
from repro.errors import WorkloadError
from repro.traffic.templates import (
    INT_UNIFORM,
    ParamSpec,
    PredicateTemplate,
    QueryTemplate,
)
from repro.workload.generator import VALUE_DOMAIN, GeneratedWorkload

#: Default template weights: mostly point lookups, some scans, the
#: occasional full paper query (ratio 4:2:1).
DEFAULT_WEIGHTS = {"point": 4.0, "scan": 2.0, "paper": 1.0}


@dataclass(frozen=True)
class MixEntry:
    template: QueryTemplate
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(
                f"mix entry {self.template.name!r}: weight must be > 0"
            )


@dataclass(frozen=True)
class QueryMix:
    """A weighted set of templates to draw queries from."""

    entries: Tuple[MixEntry, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise WorkloadError("a query mix needs at least one template")
        names = [e.template.name for e in self.entries]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate templates in mix: {names}")

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(e.template.name for e in self.entries)

    @property
    def total_weight(self) -> float:
        return sum(e.weight for e in self.entries)

    def choose(self, rng: random.Random) -> QueryTemplate:
        """Weighted template draw (one ``rng.random()`` consumed)."""
        point = rng.random() * self.total_weight
        cumulative = 0.0
        for entry in self.entries:
            cumulative += entry.weight
            if point < cumulative:
                return entry.template
        return self.entries[-1].template

    def describe(self) -> str:
        total = self.total_weight
        parts = [
            f"{e.template.name}={e.weight / total:.0%}" for e in self.entries
        ]
        return " ".join(parts)


def default_mix(
    workload: GeneratedWorkload,
    weights: Dict[str, float] = DEFAULT_WEIGHTS,
) -> QueryMix:
    """The standard point/scan/paper mix over a generated workload."""
    n_root = max(workload.entities_per_class[0], 1) if (
        workload.entities_per_class
    ) else 1
    point = QueryTemplate(
        name="point",
        range_class=workload.query.range_class,
        targets=("key", "t0"),
        predicates=(PredicateTemplate(path="key", op=Op.EQ, param="key"),),
        params=(ParamSpec("key", kind=INT_UNIFORM, low=0, high=n_root),),
    )
    scan = QueryTemplate(
        name="scan",
        range_class=workload.query.range_class,
        targets=("key", "t0"),
        predicates=(
            PredicateTemplate(path="t0", op=Op.LT, param="threshold"),
        ),
        params=(
            ParamSpec(
                "threshold",
                kind=INT_UNIFORM,
                low=VALUE_DOMAIN // 10,
                high=VALUE_DOMAIN,
            ),
        ),
    )
    # Re-draw the paper query's threshold (LT) operands per execution;
    # equality predicates keep their categorical operand (varying those
    # would change which signature partitions can prune).
    vary = {
        str(pred.path): ParamSpec(
            str(pred.path),
            kind=INT_UNIFORM,
            low=max(int(pred.operand) // 2, 1),
            high=max(int(pred.operand) * 2, 2),
        )
        for pred in workload.query.predicates
        if pred.op is Op.LT and isinstance(pred.operand, int)
    }
    paper = QueryTemplate.from_query("paper", workload.query, vary=vary)
    entries = []
    for name, template in (("point", point), ("scan", scan), ("paper", paper)):
        weight = weights.get(name, 0.0)
        if weight > 0:
            entries.append(MixEntry(template=template, weight=weight))
    return QueryMix(entries=tuple(entries))
