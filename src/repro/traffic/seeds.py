"""Deterministic seed derivation for the traffic engine.

All traffic randomness flows from one *root seed* through
:func:`derive_seed`: per-worker parameter streams, per-query fault
seeds, template draws.  Derivation hashes the scope path instead of
offsetting the root (``root + worker`` style schemes collide across
scopes), so streams are independent and the full workload is a pure
function of the root seed — two runs with the same seed are
byte-identical, and any single query can be replayed in isolation.
"""

from __future__ import annotations

import hashlib

#: Bytes of the sha256 digest folded into the derived integer seed.
_SEED_BYTES = 8


def derive_seed(root: int, *scope: object) -> int:
    """A child seed for *scope* under *root*, stable across runs.

    ``derive_seed(1996, "worker", 3)`` names worker 3's parameter
    stream; ``derive_seed(1996, "fault", 3, 17)`` names the fault seed
    of that worker's 17th query.  Scopes are joined textually, so any
    hashable-as-string path works and distinct paths give independent
    64-bit seeds.
    """
    payload = ":".join(str(part) for part in (root, *scope))
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")
