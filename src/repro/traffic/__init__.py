"""Deterministic concurrent traffic over one shared federation.

Layers (see ``docs/TRAFFIC.md``):

* :mod:`repro.traffic.seeds` — sha256 seed derivation: every stream of
  randomness is a pure function of the root seed;
* :mod:`repro.traffic.templates` — query templates with named,
  spec-drawn parameters;
* :mod:`repro.traffic.mix` — weighted template mixes
  (:func:`~repro.traffic.mix.default_mix` builds the standard
  point/scan/paper mix from a generated workload);
* :mod:`repro.traffic.driver` — the engine: N cooperative workers
  interleaved through the simulation kernel behind an admission gate,
  with per-worker cache accounting and optional serial verification.
"""

from repro.traffic.driver import (
    AdmissionControl,
    QueryRecord,
    TrafficEngine,
    TrafficReport,
    WorkerSummary,
)
from repro.traffic.mix import DEFAULT_WEIGHTS, MixEntry, QueryMix, default_mix
from repro.traffic.seeds import derive_seed
from repro.traffic.templates import (
    BoundQuery,
    ParamSpec,
    PredicateTemplate,
    QueryTemplate,
)

__all__ = [
    "AdmissionControl",
    "BoundQuery",
    "DEFAULT_WEIGHTS",
    "MixEntry",
    "ParamSpec",
    "PredicateTemplate",
    "QueryMix",
    "QueryRecord",
    "QueryTemplate",
    "TrafficEngine",
    "TrafficReport",
    "WorkerSummary",
    "default_mix",
    "derive_seed",
]
