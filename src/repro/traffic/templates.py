"""Seeded query templates: the parameter-generator layer of traffic.

A :class:`QueryTemplate` is a query *shape* with named holes; a
:class:`ParamSpec` says how to fill each hole from a worker's seeded
RNG.  ``template.instantiate(rng)`` draws every parameter in
declaration order (so the draw sequence is part of the template's
contract and reruns are byte-identical) and returns a
:class:`BoundQuery` — the concrete, hashable
:class:`~repro.core.query.Query` plus the drawn parameter values for
reporting and replay.

Templates never touch the federation: binding is pure, which is what
lets the traffic driver re-execute any bound query serially and demand
an identical answer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.query import Op, Path, Predicate, Query
from repro.errors import WorkloadError

#: Parameter kinds a spec may draw from.
INT_UNIFORM = "int_uniform"
CHOICE = "choice"
CONST = "const"


@dataclass(frozen=True)
class ParamSpec:
    """How one template parameter is drawn.

    * ``int_uniform`` — an integer in ``[low, high)`` via
      ``rng.randrange``;
    * ``choice`` — one of *choices* via ``rng.choice``;
    * ``const`` — always *value*; no RNG draw is consumed, so adding a
      constant never shifts another parameter's stream.
    """

    name: str
    kind: str = INT_UNIFORM
    low: int = 0
    high: int = 1
    choices: Tuple[object, ...] = ()
    value: object = None

    def __post_init__(self) -> None:
        if self.kind not in (INT_UNIFORM, CHOICE, CONST):
            raise WorkloadError(f"unknown param kind {self.kind!r}")
        if self.kind == INT_UNIFORM and self.high <= self.low:
            raise WorkloadError(
                f"param {self.name!r}: empty range [{self.low}, {self.high})"
            )
        if self.kind == CHOICE and not self.choices:
            raise WorkloadError(f"param {self.name!r}: no choices")

    def draw(self, rng: random.Random) -> object:
        if self.kind == INT_UNIFORM:
            return rng.randrange(self.low, self.high)
        if self.kind == CHOICE:
            return rng.choice(self.choices)
        return self.value


@dataclass(frozen=True)
class PredicateTemplate:
    """A predicate whose operand is the template parameter *param*."""

    path: str
    op: Op
    param: str


@dataclass(frozen=True)
class BoundQuery:
    """One concrete instantiation of a template."""

    template: str
    query: Query
    params: Tuple[Tuple[str, object], ...]

    @property
    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass(frozen=True)
class QueryTemplate:
    """A parameterized query shape over the global schema."""

    name: str
    range_class: str
    targets: Tuple[str, ...]
    predicates: Tuple[PredicateTemplate, ...]
    params: Tuple[ParamSpec, ...]

    def __post_init__(self) -> None:
        known = {spec.name for spec in self.params}
        if len(known) != len(self.params):
            raise WorkloadError(f"template {self.name!r}: duplicate params")
        for pred in self.predicates:
            if pred.param not in known:
                raise WorkloadError(
                    f"template {self.name!r}: predicate on {pred.path!r} "
                    f"names unknown param {pred.param!r}"
                )

    def instantiate(self, rng: random.Random) -> BoundQuery:
        """Draw every parameter (declaration order) and bind the query."""
        drawn = tuple((spec.name, spec.draw(rng)) for spec in self.params)
        values = dict(drawn)
        predicates = tuple(
            Predicate(
                path=Path.parse(pred.path),
                op=pred.op,
                operand=values[pred.param],
            )
            for pred in self.predicates
        )
        query = Query.conjunctive(
            self.range_class,
            [Path.parse(t) for t in self.targets],
            predicates,
        )
        return BoundQuery(template=self.name, query=query, params=drawn)

    @classmethod
    def from_query(
        cls,
        name: str,
        query: Query,
        vary: Optional[Mapping[str, ParamSpec]] = None,
    ) -> "QueryTemplate":
        """Wrap an existing conjunctive query as a template.

        *vary* maps a predicate's dotted path to the spec that draws its
        operand; every other predicate keeps its operand as a ``const``
        parameter (consuming no RNG), so varying one operand never
        perturbs the rest of the query.
        """
        vary = dict(vary or {})
        if not query.is_conjunctive:
            raise WorkloadError(
                f"template {name!r}: only conjunctive queries are "
                "templatable"
            )
        predicates = []
        specs = []
        for index, predicate in enumerate(query.predicates):
            dotted = str(predicate.path)
            param = f"p{index}:{dotted}"
            spec = vary.pop(dotted, None)
            if spec is None:
                spec = ParamSpec(param, kind=CONST, value=predicate.operand)
            else:
                spec = ParamSpec(
                    param,
                    kind=spec.kind,
                    low=spec.low,
                    high=spec.high,
                    choices=spec.choices,
                    value=spec.value,
                )
            specs.append(spec)
            predicates.append(
                PredicateTemplate(path=dotted, op=predicate.op, param=param)
            )
        if vary:
            raise WorkloadError(
                f"template {name!r}: vary names unknown predicate paths "
                f"{sorted(vary)}"
            )
        return cls(
            name=name,
            range_class=query.range_class,
            targets=tuple(str(t) for t in query.targets),
            predicates=tuple(predicates),
            params=tuple(specs),
        )
