"""The concurrent traffic engine: N workers over one shared federation.

:class:`TrafficEngine` interleaves thousands of queries from N logical
workers through the simulation kernel against *one*
:class:`~repro.core.system.DistributedSystem`.  Workers are cooperative
:class:`~repro.sim.kernel.Process`\\ es, not threads: each holds an
:class:`~repro.core.session.EngineSession` (its own options, fault
seeds and cache accounting over the shared caches), draws queries from
a weighted :class:`~repro.traffic.mix.QueryMix` with its own derived
RNG, and competes for an admission gate before executing.

Timing model: executing a query is synchronous on the host (the
strategy runs its own inner federation simulation), and its simulated
``total_time`` is then *charged on the traffic clock* while the worker
holds an admission slot.  The gate is a kernel
:class:`~repro.sim.kernel.Resource` with ``max_in_flight`` servers and
a bounded FIFO: a submission finding ``queue_depth`` waiters is *shed*
(counted, never executed) and the worker backs off.  The (time, seq)
event ordering makes the whole interleaving — grants, sheds, finish
times — byte-deterministic in the root seed.

Correctness under interleaving is checked, not assumed:
:meth:`TrafficEngine.run` with ``verify=True`` re-executes every
distinct bound query serially on a fresh engine and demands a
byte-identical answer digest (the difftest oracle's notion of answer
equality).  Shared caches may change *cost*, never *answers*.

Live evolution: pass an :class:`~repro.evolution.plan.EvolutionPlan`
and the engine runs a controller pump process alongside the workers —
membership and schema changes fire on the same simulated clock the
queries run on.  Every grant records the federation epoch it executed
against (``QueryRecord.evo_step``); serial verification of a churned
run rebuilds a fresh federation via *system_factory* and replays
records in epoch order, stepping a fresh controller to each record's
epoch before re-executing.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.engine import GlobalQueryEngine
from repro.core.options import ExecutionOptions
from repro.core.system import DistributedSystem
from repro.difftest.oracle import answer_digest
from repro.errors import WorkloadError
from repro.evolution.controller import EvolutionController
from repro.evolution.plan import EvolutionPlan
from repro.integration.mapping import CacheStats
from repro.sim.kernel import Acquire, Release, Resource, Simulator, Timeout
from repro.traffic.mix import QueryMix
from repro.traffic.seeds import derive_seed
from repro.traffic.templates import BoundQuery


@dataclass(frozen=True)
class AdmissionControl:
    """Backpressure at the federation's front door.

    *max_in_flight* queries execute concurrently; up to *queue_depth*
    more wait in FIFO order; beyond that, submissions are shed and the
    submitting worker backs off *shed_backoff_s* (jittered) before its
    next query.
    """

    max_in_flight: int = 8
    queue_depth: int = 32
    shed_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise WorkloadError("max_in_flight must be >= 1")
        if self.queue_depth < 0:
            raise WorkloadError("queue_depth must be >= 0")
        if self.shed_backoff_s < 0:
            raise WorkloadError("shed_backoff_s must be >= 0")


@dataclass(frozen=True)
class QueryRecord:
    """One query's life on the traffic clock."""

    worker: int
    seq: int
    template: str
    submitted_s: float
    started_s: float
    finished_s: float
    service_s: float
    digest: str
    fault_seed: Optional[int] = None
    shed: bool = False
    #: Federation evolution epoch the query executed against (the
    #: controller's applied-transition count at the admission grant).
    evo_step: int = 0
    #: Whether the execution straddled an open propagation window.
    straddled: bool = False

    @property
    def latency_s(self) -> float:
        """Submission-to-finish time (queueing wait + service)."""
        return self.finished_s - self.submitted_s

    @property
    def wait_s(self) -> float:
        return self.started_s - self.submitted_s


@dataclass
class WorkerSummary:
    """One worker's totals after a run."""

    worker: int
    completed: int
    shed: int
    cache_hits: int
    cache_misses: int
    shared_hits: int


@dataclass
class TrafficReport:
    """Everything one traffic run produced (wall-clock free)."""

    workers: int
    queries_per_worker: int
    queries_total: int
    seed: int
    strategy: str
    mix: str
    admission: AdmissionControl
    completed: int
    shed: int
    makespan_s: float
    throughput_qps: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    mean_service_s: float
    gate_wait_s: float
    gate_queued: int
    gate_rejected: int
    cache_hits: int
    cache_misses: int
    shared_hits: int
    template_counts: Dict[str, int]
    per_worker: List[WorkerSummary]
    records: List[QueryRecord] = field(repr=False, default_factory=list)
    verified: int = 0
    violations: List[str] = field(default_factory=list)
    #: Evolution-under-load annotations (defaults = frozen federation).
    evolution: str = ""
    evo_transitions: int = 0
    final_epoch: int = 0
    queries_straddled: int = 0
    propagation_lag_mean_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """A JSON-stable summary (records elided, no wall clock)."""
        return {
            "workers": self.workers,
            "queries_per_worker": self.queries_per_worker,
            "queries_total": self.queries_total,
            "seed": self.seed,
            "strategy": self.strategy,
            "mix": self.mix,
            "admission": {
                "max_in_flight": self.admission.max_in_flight,
                "queue_depth": self.admission.queue_depth,
                "shed_backoff_s": self.admission.shed_backoff_s,
            },
            "completed": self.completed,
            "shed": self.shed,
            "makespan_s": round(self.makespan_s, 9),
            "throughput_qps": round(self.throughput_qps, 6),
            "latency_p50_s": round(self.latency_p50_s, 9),
            "latency_p95_s": round(self.latency_p95_s, 9),
            "latency_p99_s": round(self.latency_p99_s, 9),
            "mean_service_s": round(self.mean_service_s, 9),
            "gate_wait_s": round(self.gate_wait_s, 9),
            "gate_queued": self.gate_queued,
            "gate_rejected": self.gate_rejected,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "shared_hits": self.shared_hits,
            "template_counts": dict(sorted(self.template_counts.items())),
            "per_worker": [
                {
                    "worker": w.worker,
                    "completed": w.completed,
                    "shed": w.shed,
                    "cache_hits": w.cache_hits,
                    "cache_misses": w.cache_misses,
                    "shared_hits": w.shared_hits,
                }
                for w in self.per_worker
            ],
            "verified": self.verified,
            "violations": list(self.violations),
            "evolution": {
                "plan": self.evolution,
                "transitions": self.evo_transitions,
                "final_epoch": self.final_epoch,
                "queries_straddled": self.queries_straddled,
                "propagation_lag_mean_s": round(
                    self.propagation_lag_mean_s, 9
                ),
            },
        }

    def summary(self) -> str:
        text = (
            f"{self.completed} queries ({self.shed} shed) in "
            f"{self.makespan_s:.3f} simulated s — "
            f"{self.throughput_qps:.1f} q/s, latency p50/p95/p99 = "
            f"{self.latency_p50_s * 1000:.1f}/"
            f"{self.latency_p95_s * 1000:.1f}/"
            f"{self.latency_p99_s * 1000:.1f} ms"
        )
        if self.evo_transitions:
            text += (
                f"; {self.evo_transitions} evolution transitions, "
                f"{self.queries_straddled} queries straddled"
            )
        return text


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty).

    ``rank = ceil(q * n)`` clamped to ``[1, n]``.  The old
    scale-by-100-then-truncate formulation dropped fractional ranks
    below a hundredth (``q=0.501, n=2`` picked the first sample instead
    of the second) — truncating *before* the ceiling floors any rank
    whose fractional part is under 0.01.  ``round(..., 9)`` keeps exact
    products like ``0.95 * 20`` from drifting one rank up through float
    error; the clamp makes the single-sample and ``q == 1.0`` boundary
    cases explicit.
    """
    if not sorted_values:
        return 0.0
    n = len(sorted_values)
    rank = max(1, math.ceil(round(q * n, 9)))
    return sorted_values[min(n, rank) - 1]


class TrafficEngine:
    """Drive a seeded concurrent workload through one shared federation."""

    def __init__(
        self,
        system: DistributedSystem,
        mix: QueryMix,
        workers: int = 4,
        queries: int = 50,
        seed: int = 0,
        strategy: str = "BL",
        options: Optional[ExecutionOptions] = None,
        admission: Optional[AdmissionControl] = None,
        think_time_s: float = 0.0,
        total_queries: Optional[int] = None,
        evolution: Optional[EvolutionPlan] = None,
        system_factory: Optional[Callable[[], DistributedSystem]] = None,
    ) -> None:
        if workers < 1:
            raise WorkloadError("traffic needs at least one worker")
        self.system = system
        self.mix = mix
        self.workers = workers
        if total_queries is not None:
            # A total budget divided as evenly as possible: the first
            # (total % workers) workers ask one extra query.
            if total_queries < 1:
                raise WorkloadError("traffic needs at least one query")
            base_n, extra = divmod(total_queries, workers)
            self._counts: Tuple[int, ...] = tuple(
                base_n + (1 if i < extra else 0) for i in range(workers)
            )
        else:
            if queries < 1:
                raise WorkloadError(
                    "traffic needs at least one query per worker"
                )
            self._counts = (queries,) * workers
        self.queries = max(self._counts)
        self.seed = seed
        self.strategy = strategy
        self.admission = admission or AdmissionControl()
        self.think_time_s = think_time_s
        self.engine = GlobalQueryEngine(
            system, default_strategy=strategy, options=options
        )
        # Build the signature catalog once, up front, when the chosen
        # strategy needs it: it is part of the shared federation, and
        # letting the first grant build it implicitly would bill one
        # arbitrary worker for shared work.
        if getattr(self.engine.default_strategy, "use_signatures", False):
            self.engine.ensure_signatures()
        self._sessions: List = []
        #: Evolution under load: the plan runs on the traffic clock via
        #: a controller pump process; *system_factory* rebuilds a fresh
        #: pre-plan federation for serial verification of churned runs.
        self.evolution = (
            evolution if evolution is not None and evolution.active else None
        )
        self.system_factory = system_factory
        self._controller: Optional[EvolutionController] = None

    # --- the evolution pump -------------------------------------------------

    def _evolution_pump(self, sim: Simulator, ctl: EvolutionController):
        """Apply plan transitions at their simulated times.

        Workers execute queries synchronously at the admission grant, so
        the controller can only advance *between* executions — which is
        exactly what pins every query to one epoch.
        """
        while not ctl.done:
            next_t = ctl.next_time()
            if next_t is None:  # pragma: no cover - done implies None
                break
            if next_t > sim.now:
                yield Timeout(next_t - sim.now)
            ctl.step()

    # --- the worker process -------------------------------------------------

    def _worker_body(
        self,
        sim: Simulator,
        gate: Resource,
        worker_id: int,
        session,
        records: List[QueryRecord],
    ):
        """One worker: draw, admit (or shed), execute, repeat.

        Two independent derived RNG streams per worker: *params* drives
        template choice and parameter binding, *clock* drives think/
        backoff jitter — so retuning the timing knobs never changes
        which queries are asked.
        """
        params = random.Random(derive_seed(self.seed, "worker", worker_id))
        clock = random.Random(derive_seed(self.seed, "clock", worker_id))
        base = session.options
        for seq in range(self._counts[worker_id]):
            if self.think_time_s > 0:
                yield Timeout(clock.random() * 2 * self.think_time_s)
            template = self.mix.choose(params)
            bound = template.instantiate(params)
            submitted = sim.now
            if not gate.admit(self.admission.queue_depth):
                records.append(QueryRecord(
                    worker=worker_id,
                    seq=seq,
                    template=bound.template,
                    submitted_s=submitted,
                    started_s=submitted,
                    finished_s=submitted,
                    service_s=0.0,
                    digest="",
                    shed=True,
                    evo_step=(
                        self._controller.applied
                        if self._controller is not None else 0
                    ),
                ))
                if self.admission.shed_backoff_s > 0:
                    yield Timeout(
                        self.admission.shed_backoff_s
                        * (0.5 + clock.random())
                    )
                continue
            yield Acquire(gate)
            fault_seed: Optional[int] = None
            opts = base
            if base.faults_active:
                fault_seed = derive_seed(self.seed, "fault", worker_id, seq)
                opts = base.with_(fault_seed=fault_seed)
            # The execution is synchronous at the grant instant, so the
            # controller's applied count here *is* the query's epoch pin.
            evo_step = (
                self._controller.applied if self._controller is not None
                else 0
            )
            report = session.execute(bound.query, options=opts)
            service = report.metrics.total_time
            yield Timeout(service)
            yield Release(gate)
            records.append(QueryRecord(
                worker=worker_id,
                seq=seq,
                template=bound.template,
                submitted_s=submitted,
                started_s=sim.now - service,
                finished_s=sim.now,
                service_s=service,
                digest=answer_digest(report.results),
                fault_seed=fault_seed,
                evo_step=evo_step,
                straddled=bool(report.availability.epochs_straddled),
            ))

    # --- runs ---------------------------------------------------------------

    def run(self, verify: bool = False) -> TrafficReport:
        """Execute the full workload; optionally verify against serial.

        With *verify*, every distinct bound query (same query, same
        fault seed) is re-executed serially on a fresh engine over the
        same federation and its answer digest must equal what the
        interleaved run produced — 0 violations means the shared-cache
        interleaving changed no answer.
        """
        sim = Simulator()
        gate = Resource(
            sim, "admission", capacity=self.admission.max_in_flight
        )
        records: List[QueryRecord] = []
        if self.evolution is not None:
            if self._controller is not None:
                raise WorkloadError(
                    "an evolved TrafficEngine is single-shot: the plan "
                    "already mutated the federation; build a fresh engine"
                )
            self._controller = EvolutionController(
                self.system, self.evolution
            )
            sim.process(
                self._evolution_pump(sim, self._controller),
                name="evolution",
            )
        self._sessions = [
            self.engine.session(name=f"worker-{worker_id}")
            for worker_id in range(self.workers)
        ]
        for worker_id, session in enumerate(self._sessions):
            body = self._worker_body(sim, gate, worker_id, session, records)
            sim.process(body, name=f"worker-{worker_id}")
        sim.run()
        records.sort(key=lambda r: (r.worker, r.seq))
        done = [r for r in records if not r.shed]
        shed = len(records) - len(done)
        makespan = max((r.finished_s for r in done), default=0.0)
        latencies = sorted(r.latency_s for r in done)
        template_counts: Dict[str, int] = {}
        for record in records:
            template_counts[record.template] = (
                template_counts.get(record.template, 0) + 1
            )
        report = TrafficReport(
            workers=self.workers,
            queries_per_worker=self.queries,
            queries_total=sum(self._counts),
            seed=self.seed,
            strategy=self.strategy,
            mix=self.mix.describe(),
            admission=self.admission,
            completed=len(done),
            shed=shed,
            makespan_s=makespan,
            throughput_qps=(len(done) / makespan) if makespan > 0 else 0.0,
            latency_p50_s=_percentile(latencies, 0.50),
            latency_p95_s=_percentile(latencies, 0.95),
            latency_p99_s=_percentile(latencies, 0.99),
            mean_service_s=(
                sum(r.service_s for r in done) / len(done) if done else 0.0
            ),
            gate_wait_s=gate.wait_time,
            gate_queued=gate.grants_queued,
            gate_rejected=gate.rejected,
            cache_hits=sum(
                s.cache.hits for s in self.engine_sessions()
            ),
            cache_misses=sum(
                s.cache.misses for s in self.engine_sessions()
            ),
            shared_hits=self.system.shared_hits_total,
            template_counts=template_counts,
            per_worker=[
                WorkerSummary(
                    worker=int(s.name.split("-")[-1]),
                    completed=sum(
                        1 for r in done
                        if f"worker-{r.worker}" == s.name
                    ),
                    shed=sum(
                        1 for r in records
                        if r.shed and f"worker-{r.worker}" == s.name
                    ),
                    cache_hits=s.cache.hits,
                    cache_misses=s.cache.misses,
                    shared_hits=s.shared_hits,
                )
                for s in self.engine_sessions()
            ],
            records=records,
        )
        if self._controller is not None:
            ctl = self._controller
            lags = [
                ctl.propagation_lag(event.label)
                for event in self.evolution.ordered_events()
            ]
            report.evolution = self.evolution.describe()
            report.evo_transitions = ctl.applied
            report.final_epoch = self.system.schema_epoch
            report.queries_straddled = sum(1 for r in done if r.straddled)
            report.propagation_lag_mean_s = (
                sum(lags) / len(lags) if lags else 0.0
            )
        if verify:
            self._verify_serial(report)
        return report

    def engine_sessions(self):
        """The worker sessions of the most recent run, in worker order."""
        return self._sessions

    def _verify_serial(self, report: TrafficReport) -> None:
        """Re-execute each distinct bound query serially; compare digests."""
        if self._controller is not None:
            self._verify_serial_evolved(report)
            return
        serial = GlobalQueryEngine(
            self.system,
            default_strategy=self.strategy,
            options=self.engine.options,
        )
        expected: Dict[Tuple[object, Optional[int]], str] = {}
        regen: Dict[int, List[BoundQuery]] = {
            worker_id: self.replay_worker(worker_id)
            for worker_id in range(self.workers)
        }
        for record in report.records:
            if record.shed:
                continue
            bound = regen[record.worker][record.seq]
            key = (bound.query, record.fault_seed)
            digest = expected.get(key)
            if digest is None:
                opts = serial.options
                if record.fault_seed is not None:
                    opts = opts.with_(fault_seed=record.fault_seed)
                digest = answer_digest(
                    serial.execute(bound.query, options=opts).results
                )
                expected[key] = digest
            report.verified += 1
            if digest != record.digest:
                report.violations.append(
                    f"worker {record.worker} seq {record.seq} "
                    f"({record.template}): interleaved digest "
                    f"{record.digest} != serial {digest}"
                )

    def _verify_serial_evolved(self, report: TrafficReport) -> None:
        """Serial verification of a churned run, epoch by epoch.

        The live federation was mutated in place, so the serial baseline
        is a *fresh* federation (from *system_factory*) plus a fresh
        controller stepped to each record's pinned epoch.  Records are
        replayed in (epoch, worker, seq) order — the controller only
        steps forward — and the memo key includes the epoch: the same
        bound query can legitimately answer differently across epochs.
        """
        if self.system_factory is None:
            raise WorkloadError(
                "verifying an evolved traffic run needs system_factory "
                "(a zero-argument callable rebuilding the pre-plan "
                "federation)"
            )
        system = self.system_factory()
        controller = EvolutionController(system, self.evolution)
        serial = GlobalQueryEngine(
            system,
            default_strategy=self.strategy,
            options=self.engine.options,
        )
        if getattr(serial.default_strategy, "use_signatures", False):
            serial.ensure_signatures()
        expected: Dict[Tuple[object, Optional[int], int], str] = {}
        regen: Dict[int, List[BoundQuery]] = {
            worker_id: self.replay_worker(worker_id)
            for worker_id in range(self.workers)
        }
        replay = sorted(
            (r for r in report.records if not r.shed),
            key=lambda r: (r.evo_step, r.worker, r.seq),
        )
        for record in replay:
            controller.step_to(record.evo_step)
            bound = regen[record.worker][record.seq]
            key = (bound.query, record.fault_seed, record.evo_step)
            digest = expected.get(key)
            if digest is None:
                opts = serial.options
                if record.fault_seed is not None:
                    opts = opts.with_(fault_seed=record.fault_seed)
                digest = answer_digest(
                    serial.execute(bound.query, options=opts).results
                )
                expected[key] = digest
            report.verified += 1
            if digest != record.digest:
                report.violations.append(
                    f"worker {record.worker} seq {record.seq} "
                    f"epoch {record.evo_step} ({record.template}): "
                    f"interleaved digest {record.digest} != serial {digest}"
                )

    def replay_worker(self, worker_id: int) -> List[BoundQuery]:
        """Regenerate one worker's exact bound-query sequence.

        Binding is a pure function of the derived worker seed, so the
        sequence can be rebuilt without running any traffic — this is
        what serial verification replays against.
        """
        params = random.Random(derive_seed(self.seed, "worker", worker_id))
        return [
            self.mix.choose(params).instantiate(params)
            for _ in range(self._counts[worker_id])
        ]
