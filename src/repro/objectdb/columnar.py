"""Columnar extent views: per-attribute parallel arrays + batch 3VL kernels.

The row path (:mod:`repro.objectdb.database`) evaluates predicates one
object at a time, re-walking every path expression and allocating a
:class:`~repro.core.predicates.PathOutcome` per (object, predicate)
occurrence.  A :class:`ColumnarExtent` is a cached, versioned view of one
class extent that turns those per-object walks into *columns*:

* :meth:`ColumnarExtent.column` — one parallel array per attribute with an
  explicit null bitmap (bit ``r`` set when row ``r`` is NULL), the paper's
  3VL missing-data marker in columnar form;
* :meth:`ColumnarExtent.walk` — a :class:`WalkColumn` materializing one
  path expression over every row at once (final values, per-row missing
  locations, per-row deref counts);
* :meth:`ColumnarExtent.predicate_column` — a :class:`PredicateColumn` of
  packed truth codes (``TRUE=2 / UNKNOWN=1 / FALSE=0``) so conjunction is
  elementwise ``min`` and disjunction elementwise ``max`` — exactly
  Kleene's strong 3VL;
* :meth:`ColumnarExtent.dnf_summary` — the whole ``Where`` clause reduced
  to one code array plus per-row comparison/deref charge arrays.

Transparency contract
---------------------

The columnar path must be *byte-identical* to the row path: same rows,
same unsolved bookkeeping, same :class:`~repro.core.predicates.EvalMeter`
totals, and the same exceptions.  Two mechanisms keep that honest:

* charge arrays replicate the row path's metering per (row, occurrence),
  so aggregating them gives the exact row-path totals;
* a row whose evaluation would raise (non-reference mid-path, unorderable
  operands, ``CONTAINS`` on a scalar, ...) is recorded as an *error row*
  instead of raising eagerly.  Callers that would touch an error row
  abandon the columnar attempt entirely and re-run the unmodified row
  path, which raises the canonical exception in canonical order.  Rows
  outside the candidate set may hold error markers harmlessly — the row
  path would never have evaluated them either.

Views are keyed by :attr:`ComponentDatabase.data_version`, which every
insert and every :meth:`ComponentDatabase.note_mutation` bumps, so a
stale column can never serve a query (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from operator import add
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.predicates import EvalMeter, compare_values
from repro.core.query import Conjunction, Op, Path, Predicate
from repro.core.tvl import TV
from repro.errors import QueryError
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.local_query import UnsolvedPredicateOnObject
from repro.objectdb.objects import LocalObject
from repro.objectdb.values import NULL, Value, is_null

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.objectdb.database import ComponentDatabase

#: Packed truth codes: conjunction is ``min``, disjunction is ``max``.
FALSE_CODE = 0
UNKNOWN_CODE = 1
TRUE_CODE = 2

#: ``TV_OF_CODE[code]`` recovers the enum member from a packed code.
TV_OF_CODE = (TV.FALSE, TV.UNKNOWN, TV.TRUE)

#: ``CODE_OF_TV[tv]`` packs an enum member into its code.
CODE_OF_TV = {TV.FALSE: FALSE_CODE, TV.UNKNOWN: UNKNOWN_CODE, TV.TRUE: TRUE_CODE}

#: A missing location in columnar form: (depth, holder LOid, holder class).
Miss = Tuple[int, LOid, str]


class AttributeColumn:
    """One attribute over every row: parallel value array + null bitmap.

    ``null_bitmap`` has bit ``r`` set when row ``r``'s value is NULL (or
    an empty multi-value) — the explicit 3VL missingness marker.  Values
    at null rows are normalized to :data:`NULL`.
    """

    __slots__ = ("attribute", "values", "null_bitmap")

    def __init__(self, attribute: str, values: List[Value], null_bitmap: int):
        self.attribute = attribute
        self.values = values
        self.null_bitmap = null_bitmap

    def is_null(self, row: int) -> bool:
        return bool((self.null_bitmap >> row) & 1)

    def null_count(self) -> int:
        return bin(self.null_bitmap).count("1")

    def __len__(self) -> int:
        return len(self.values)


class WalkColumn:
    """One path expression walked over every row.

    ``miss[r]`` is ``None`` when the walk reached a (non-null) final
    value, else ``(depth, holder_loid, holder_class)`` — the columnar
    form of :class:`~repro.core.predicates.MissingAt`.  ``derefs[r]``
    counts the dereferences the row path would charge (including the one
    paid *before* a dangling deref).  ``errors`` maps row -> the
    exception the row path would raise there.
    """

    __slots__ = ("values", "miss", "derefs", "errors")

    def __init__(
        self,
        values: List[Value],
        miss: List[Optional[Miss]],
        derefs: List[int],
        errors: Dict[int, BaseException],
    ):
        self.values = values
        self.miss = miss
        self.derefs = derefs
        self.errors = errors


class PredicateColumn:
    """One predicate evaluated over every row: codes + charge arrays.

    ``codes[r]`` is the packed 3VL verdict (missing rows are UNKNOWN).
    ``comparisons[r]`` is the comparison charge the row path would pay
    (0 for missing rows — the row path never reaches ``compare_values``
    there); ``derefs[r]`` the walk's deref charge.  ``miss`` aliases the
    walk column's missing locations; ``error_rows`` is the union of walk
    and compare error rows.
    """

    __slots__ = ("codes", "comparisons", "derefs", "miss", "error_rows")

    def __init__(
        self,
        codes: List[int],
        comparisons: List[int],
        derefs: List[int],
        miss: List[Optional[Miss]],
        error_rows: Set[int],
    ):
        self.codes = codes
        self.comparisons = comparisons
        self.derefs = derefs
        self.miss = miss
        self.error_rows = error_rows


class DnfSummary:
    """A whole ``Where`` clause over every row, reduced to flat arrays.

    ``codes[r]`` is the DNF verdict (``max`` over conjuncts of ``min``
    over that conjunct's predicate codes); ``comparisons[r]`` /
    ``derefs[r]`` are the total evaluation charges for row ``r`` across
    *every* (conjunct, predicate) occurrence — the row path evaluates
    them all (no short-circuit), so charges are occurrence-exact.
    """

    __slots__ = ("codes", "comparisons", "derefs", "error_rows")

    def __init__(
        self,
        codes: List[int],
        comparisons: List[int],
        derefs: List[int],
        error_rows: Set[int],
    ):
        self.codes = codes
        self.comparisons = comparisons
        self.derefs = derefs
        self.error_rows = error_rows


class UnsolvedEntry:
    """Precomputed unsolved bookkeeping for one (row, predicate) miss.

    Mirrors ``ComponentDatabase._record_unsolved``: the holder object the
    relative predicate attaches to (``is_root`` when it is the row's root
    object itself), the relative predicate/``reached_via`` prefix — shared
    across rows blocked at the same depth — and the deref charge the row
    path pays walking to the holder.
    """

    __slots__ = (
        "holder_loid",
        "holder_class",
        "is_root",
        "relative",
        "reached_via",
        "derefs",
    )

    def __init__(
        self,
        holder_loid: LOid,
        holder_class: str,
        is_root: bool,
        relative: UnsolvedPredicateOnObject,
        reached_via: Optional[Path],
        derefs: int,
    ):
        self.holder_loid = holder_loid
        self.holder_class = holder_class
        self.is_root = is_root
        self.relative = relative
        self.reached_via = reached_via
        self.derefs = derefs


class ColumnarExtent:
    """A versioned columnar view of one class extent at one site.

    Rows are the extent's insertion order (the scan order of the row
    path).  All columns are built lazily and cached; the owning
    :class:`~repro.objectdb.database.ComponentDatabase` discards the
    whole view when its ``data_version`` moves.
    """

    def __init__(self, db: "ComponentDatabase", class_name: str) -> None:
        extent = db.extent(class_name)
        self.class_name = class_name
        self.version = db.data_version
        self.loids: List[LOid] = list(extent)
        self.objects: List[LocalObject] = list(extent.values())
        self.row_of: Dict[LOid, int] = {
            loid: row for row, loid in enumerate(self.loids)
        }
        self._deref = db.deref
        self._attrs: Dict[str, AttributeColumn] = {}
        self._walks: Dict[Tuple[str, ...], WalkColumn] = {}
        self._compares: Dict[object, Optional["_CompareColumn"]] = {}
        self._preds: Dict[Predicate, Optional[PredicateColumn]] = {}
        self._dnfs: Dict[
            Tuple[Conjunction, ...], Optional[DnfSummary]
        ] = {}
        self._unsolved: Dict[
            Tuple[Predicate, Optional[int]], List[Optional[UnsolvedEntry]]
        ] = {}
        self._row_book: Dict[object, Dict[int, tuple]] = {}

    def __len__(self) -> int:
        return len(self.objects)

    # --- attribute columns ---------------------------------------------------

    def column(self, attribute: str) -> AttributeColumn:
        """The parallel array + null bitmap for one attribute."""
        col = self._attrs.get(attribute)
        if col is None:
            values: List[Value] = []
            bitmap = 0
            append = values.append
            for row, obj in enumerate(self.objects):
                value = obj.values.get(attribute, NULL)
                if is_null(value):
                    bitmap |= 1 << row
                    append(NULL)
                else:
                    append(value)
            col = AttributeColumn(attribute, values, bitmap)
            self._attrs[attribute] = col
        return col

    # --- walk columns ----------------------------------------------------------

    def walk(self, path: Path) -> WalkColumn:
        """Walk *path* over every row (cached)."""
        key = path.steps
        col = self._walks.get(key)
        if col is None:
            col = self._build_walk(path)
            self._walks[key] = col
        return col

    def _build_walk(self, path: Path) -> WalkColumn:
        steps = path.steps
        n = len(self.objects)
        last = len(steps) - 1
        errors: Dict[int, BaseException] = {}
        if last == 0:
            # Single-step path: a projection of the attribute column.
            # The row path reports a null *final* value as missing (the
            # null check precedes the is-final check in walk_path).
            attr = self.column(steps[0])
            miss: List[Optional[Miss]] = [None] * n
            bitmap = attr.null_bitmap
            if bitmap:
                objects = self.objects
                for row in range(n):
                    if (bitmap >> row) & 1:
                        obj = objects[row]
                        miss[row] = (0, obj.loid, obj.class_name)
            return WalkColumn(attr.values, miss, [0] * n, errors)
        values: List[Value] = [NULL] * n
        miss = [None] * n
        derefs = [0] * n
        deref = self._deref
        for row, obj in enumerate(self.objects):
            current = obj
            paid = 0
            for depth, step in enumerate(steps):
                value = current.values.get(step, NULL)
                if is_null(value):
                    miss[row] = (depth, current.loid, current.class_name)
                    break
                if depth == last:
                    values[row] = value
                    break
                if not isinstance(value, (LOid, GOid)):
                    errors[row] = QueryError(
                        f"path {path}: step {step!r} holds non-reference "
                        f"{value!r} but is not final"
                    )
                    break
                paid += 1  # the row path charges before a failed deref
                nxt = deref(value)
                if nxt is None:
                    miss[row] = (depth, current.loid, current.class_name)
                    break
                current = nxt
            derefs[row] = paid
        return WalkColumn(values, miss, derefs, errors)

    # --- compare columns ---------------------------------------------------

    def _compare(
        self, path: Path, op: Op, operand: Value
    ) -> Optional["_CompareColumn"]:
        try:
            key = (path.steps, op, operand)
            col = self._compares.get(key)
        except TypeError:
            # Unhashable operand: no column caching is possible.
            return None
        if col is None and key not in self._compares:
            col = self._build_compare(path, op, operand)
            self._compares[key] = col
        return col

    def _build_compare(
        self, path: Path, op: Op, operand: Value
    ) -> "_CompareColumn":
        walk = self.walk(path)
        n = len(self.objects)
        codes = [UNKNOWN_CODE] * n  # missing rows stay UNKNOWN, uncharged
        comps = [0] * n
        errors: Dict[int, BaseException] = {}
        wvalues = walk.values
        wmiss = walk.miss
        werrors = walk.errors
        if op is Op.EQ or op is Op.NE:
            want = op is Op.EQ
            for row in range(n):
                if wmiss[row] is not None or row in werrors:
                    continue
                value = wvalues[row]
                try:
                    if type(value) in _SCALAR_TYPES:
                        codes[row] = (
                            TRUE_CODE
                            if (value == operand) is want
                            else FALSE_CODE
                        )
                        comps[row] = 1
                    else:
                        meter = EvalMeter()
                        codes[row] = CODE_OF_TV[
                            compare_values(op, value, operand, meter)
                        ]
                        comps[row] = meter.comparisons
                except Exception as exc:  # row path raises this in order
                    errors[row] = exc
        else:
            for row in range(n):
                if wmiss[row] is not None or row in werrors:
                    continue
                meter = EvalMeter()
                try:
                    codes[row] = CODE_OF_TV[
                        compare_values(op, wvalues[row], operand, meter)
                    ]
                    comps[row] = meter.comparisons
                except Exception as exc:
                    errors[row] = exc
        return _CompareColumn(codes, comps, errors)

    # --- predicate / DNF kernels ---------------------------------------------

    def predicate_column(self, predicate: Predicate) -> Optional[PredicateColumn]:
        """Evaluate *predicate* over every row in one pass (cached).

        Returns ``None`` when the operand is unhashable (no caching);
        callers must fall back to the row path.
        """
        try:
            col = self._preds.get(predicate)
            known = predicate in self._preds
        except TypeError:
            return None
        if col is None and not known:
            walk = self.walk(predicate.path)
            cmp = self._compare(
                predicate.path, predicate.op, predicate.operand
            )
            if cmp is None:
                col = None
            else:
                error_rows = set(walk.errors)
                error_rows.update(cmp.errors)
                col = PredicateColumn(
                    codes=cmp.codes,
                    comparisons=cmp.comparisons,
                    derefs=walk.derefs,
                    miss=walk.miss,
                    error_rows=error_rows,
                )
            self._preds[predicate] = col
        return col

    def dnf_summary(
        self, where: Tuple[Conjunction, ...]
    ) -> Optional[DnfSummary]:
        """Reduce a whole ``Where`` clause to flat per-row arrays (cached).

        Returns ``None`` when any operand is unhashable; callers fall
        back to the row path.
        """
        try:
            cached = self._dnfs.get(where)
            known = where in self._dnfs
        except TypeError:
            return None
        if cached is None and not known:
            cached = self._build_dnf(where)
            self._dnfs[where] = cached
        return cached

    def _build_dnf(
        self, where: Tuple[Conjunction, ...]
    ) -> Optional[DnfSummary]:
        n = len(self.objects)
        if not where:
            return DnfSummary([TRUE_CODE] * n, [0] * n, [0] * n, set())
        comparisons = [0] * n
        derefs = [0] * n
        error_rows: Set[int] = set()
        dnf_codes: Optional[List[int]] = None
        for conjunct in where:
            conj_codes: Optional[List[int]] = None
            for predicate in conjunct:
                col = self.predicate_column(predicate)
                if col is None:
                    return None
                error_rows.update(col.error_rows)
                comparisons = list(map(add, comparisons, col.comparisons))
                derefs = list(map(add, derefs, col.derefs))
                conj_codes = (
                    list(col.codes)
                    if conj_codes is None
                    else list(map(min, conj_codes, col.codes))
                )
            if conj_codes is None:  # empty conjunct is vacuously TRUE
                conj_codes = [TRUE_CODE] * n
            dnf_codes = (
                conj_codes
                if dnf_codes is None
                else list(map(max, dnf_codes, conj_codes))
            )
        assert dnf_codes is not None
        return DnfSummary(dnf_codes, comparisons, derefs, error_rows)

    # --- unsolved bookkeeping columns ----------------------------------------

    def row_bookkeeping(self, key: object) -> Optional[Dict[int, tuple]]:
        """Mutable per-row memo for one query shape (or ``None``).

        The caller owns the contents: it stores whatever per-row
        bookkeeping (status dict, unsolved tuples, kind, charges) one
        query shape produces, so a repeated query re-reads it instead of
        re-deriving it.  Everything stored is deterministic given this
        extent version.  ``None`` when *key* is unhashable.
        """
        try:
            memo = self._row_book.get(key)
        except TypeError:
            return None
        if memo is None:
            memo = {}
            self._row_book[key] = memo
        return memo

    def unsolved_column(
        self, predicate: Predicate, depth: Optional[int] = None
    ) -> List[Optional[UnsolvedEntry]]:
        """Per-row :class:`UnsolvedEntry` values for *predicate* (cached).

        With ``depth=None`` entries exist exactly at the predicate walk's
        missing rows — the evaluation-miss form.  With an explicit
        *depth* (a statically removed predicate) **every** row gets an
        entry: the holder walk retraces the path prefix and may be
        blocked earlier than *depth* by a null/non-reference value or a
        dangling reference, exactly like the row path's holder walk.
        """
        key = (predicate, depth)
        try:
            col = self._unsolved.get(key)
        except TypeError:  # unhashable operand: compute uncached
            return self._build_unsolved(predicate, depth)
        if col is None:
            col = self._build_unsolved(predicate, depth)
            self._unsolved[key] = col
        return col

    def _build_unsolved(
        self, predicate: Predicate, depth: Optional[int]
    ) -> List[Optional[UnsolvedEntry]]:
        steps = predicate.path.steps
        loids = self.loids
        n = len(loids)
        entries: List[Optional[UnsolvedEntry]] = [None] * n
        # The relative predicate and reached-via prefix only depend on
        # the blocking depth: build each once and share across rows.
        relatives: Dict[int, UnsolvedPredicateOnObject] = {}
        vias: Dict[int, Optional[Path]] = {}

        def parts(d: int) -> Tuple[UnsolvedPredicateOnObject, Optional[Path]]:
            relative = relatives.get(d)
            if relative is None:
                relative = UnsolvedPredicateOnObject(
                    original=predicate, relative_path=Path(steps[d:])
                )
                relatives[d] = relative
                # At depth 0 the holder is the root itself: the row path
                # never builds a reached-via prefix there.
                vias[d] = Path(steps[:d]) if d else None
            return relative, vias[d]

        if depth is None:
            miss = self.walk(predicate.path).miss
            for row in range(n):
                m = miss[row]
                if m is None:
                    continue
                d, holder_loid, holder_class = m
                relative, via = parts(d)
                # Retracing d successful steps charges d derefs.
                entries[row] = UnsolvedEntry(
                    holder_loid,
                    holder_class,
                    holder_loid == loids[row],
                    relative,
                    via,
                    d,
                )
            return entries
        deref = self._deref
        for row, obj in enumerate(self.objects):
            current = obj
            reached = depth
            paid = 0
            for index in range(depth):
                value = current.values.get(steps[index], NULL)
                if is_null(value) or not isinstance(value, LOid):
                    reached = index
                    break
                paid += 1  # the row path charges before a failed deref
                nxt = deref(value)
                if nxt is None:
                    reached = index
                    break
                current = nxt
            relative, via = parts(reached)
            entries[row] = UnsolvedEntry(
                current.loid,
                current.class_name,
                current.loid == loids[row],
                relative,
                via,
                paid,
            )
        return entries


class _CompareColumn:
    """Internal: compare verdicts + charges for one (path, op, operand)."""

    __slots__ = ("codes", "comparisons", "errors")

    def __init__(
        self,
        codes: List[int],
        comparisons: List[int],
        errors: Dict[int, BaseException],
    ):
        self.codes = codes
        self.comparisons = comparisons
        self.errors = errors


#: Scalar types eligible for the inlined EQ/NE fast path; everything else
#: (MultiValue, references, exotic values) goes through compare_values.
_SCALAR_TYPES = frozenset({int, float, str, bool})
