"""Local queries and local results at component databases.

The localized strategies decompose the global query into one *local query*
per component database holding a constituent of the root class (paper,
Section 2.3).  A local query carries:

* the *local predicates* — the global predicates that do **not** involve
  missing attributes of the site's constituent classes, and can therefore
  be evaluated locally (possibly still UNKNOWN for individual objects with
  null values);
* the *removed predicates* — predicates involving missing attributes,
  each annotated with the path depth at which the site's schema loses the
  attribute.  These are statically unsolved at this site; the component
  database only locates the object that *would* hold the data (the root
  object or an *unsolved item*) so that assistant objects can be checked.

The local result rows report, per surviving object, its certain/maybe
status, the unsolved predicates on the root object, and the unsolved
items (nested complex objects with their relative unsolved predicates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.objectdb.indexes import IndexProbe

from repro.core.query import Conjunction, Path, Predicate
from repro.core.tvl import TV
from repro.objectdb.ids import LOid
from repro.objectdb.values import Value


@dataclass(frozen=True)
class RemovedPredicate:
    """A global predicate that cannot be evaluated at a given site.

    Attributes:
        predicate: the original global predicate.
        missing_depth: first index into ``predicate.path.steps`` whose
            attribute the site's schema does not define (on the class
            reached at that point of the path).
    """

    predicate: Predicate
    missing_depth: int


@dataclass(frozen=True)
class LocalQuery:
    """A query shipped to one component database.

    Attributes:
        db_name: target component database.
        range_class: the local root class (constituent of the global root).
        targets: paths to project for the answer (on the global attribute
            names; locally missing targets bind to NULL).
        where: local predicates in DNF, one conjunct per global conjunct
            (single conjunction for the paper's standard queries; a
            conjunct may be empty when all its predicates were removed).
        removed: predicates involving missing attributes of local classes
            (flat, de-duplicated view across conjuncts).
        removed_by_conjunct: the removed predicates of each conjunct,
            aligned with ``where`` — needed so a row can be recognized as
            locally certain when some conjunct is fully TRUE *and* lost no
            predicate to removal.
    """

    db_name: str
    range_class: str
    targets: Tuple[Path, ...]
    where: Tuple[Conjunction, ...] = ()
    removed: Tuple[RemovedPredicate, ...] = ()
    removed_by_conjunct: Tuple[Tuple[Predicate, ...], ...] = ()

    @property
    def local_predicates(self) -> Tuple[Predicate, ...]:
        """Flat view of the local predicates (conjunctive queries)."""
        if not self.where:
            return ()
        if len(self.where) == 1:
            return self.where[0]
        seen = []
        for conj in self.where:
            for pred in conj:
                if pred not in seen:
                    seen.append(pred)
        return tuple(seen)


@dataclass(frozen=True)
class BatchPredicateSets:
    """One predicate evaluated over a whole extent: true/maybe/false ids.

    The columnar kernels return these id-sets instead of per-object
    :class:`~repro.core.tvl.TV` values (see
    :meth:`~repro.objectdb.database.ComponentDatabase
    .batch_evaluate_predicate`).  The three tuples partition the extent's
    LOids in extent order; ``maybe`` holds the objects whose missing data
    left the predicate UNKNOWN under 3VL.
    """

    predicate: Predicate
    true: Tuple[LOid, ...]
    maybe: Tuple[LOid, ...]
    false: Tuple[LOid, ...]


def partition_codes(
    loids: Tuple[LOid, ...], codes
) -> Tuple[Tuple[LOid, ...], Tuple[LOid, ...], Tuple[LOid, ...]]:
    """Split extent *loids* by packed 3VL codes (TRUE=2/UNKNOWN=1/FALSE=0).

    Returns ``(true, maybe, false)`` tuples preserving extent order — the
    partition step of the batch predicate kernels.
    """
    true: List[LOid] = []
    maybe: List[LOid] = []
    false: List[LOid] = []
    buckets = (false.append, maybe.append, true.append)
    for loid, code in zip(loids, codes):
        buckets[code](loid)
    return tuple(true), tuple(maybe), tuple(false)


@dataclass(frozen=True)
class UnsolvedPredicateOnObject:
    """An unsolved predicate expressed relative to the object holding it.

    ``relative_path`` is the suffix of the global predicate's path starting
    at the holder object; evaluating it on an assistant object (at the
    assistant's own site, following that site's references) checks the
    assistant (paper: "to check the assistant object").
    """

    original: Predicate
    relative_path: Path

    @property
    def relative_predicate(self) -> Predicate:
        return Predicate(
            path=self.relative_path,
            op=self.original.op,
            operand=self.original.operand,
        )


class RowKind(enum.Enum):
    """Whether a local result row is certain or maybe at its site."""

    CERTAIN = "certain"
    MAYBE = "maybe"


@dataclass
class UnsolvedItem:
    """A nested complex object of a maybe result holding missing data.

    Paper, Section 2.3: "for each maybe result o_m, the value for such a
    nested complex attribute is an object o_nc ... o_nc is named an
    unsolved item of maybe result o_m".

    Attributes:
        loid: local identifier of the nested object (the unsolved item).
        class_name: its local class.
        reached_via: path prefix from the root object to this item.
        unsolved: the predicates (relative to this item) it cannot answer.
    """

    loid: LOid
    class_name: str
    reached_via: Path
    unsolved: Tuple[UnsolvedPredicateOnObject, ...]


@dataclass
class LocalResultRow:
    """One root object surviving local evaluation at a component database."""

    loid: LOid
    class_name: str
    kind: RowKind
    bindings: Dict[Path, Value] = field(default_factory=dict)
    # Unsolved predicates whose missing data sits on the root object itself.
    unsolved: Tuple[UnsolvedPredicateOnObject, ...] = ()
    unsolved_items: Tuple[UnsolvedItem, ...] = ()
    # Three-valued status of every global predicate at this site, keyed by
    # the original predicate.  Certification recombines these across sites
    # and assistant checks.
    predicate_status: Dict[Predicate, TV] = field(default_factory=dict)

    @property
    def is_maybe(self) -> bool:
        return self.kind is RowKind.MAYBE

    def all_unsolved_count(self) -> int:
        return len(self.unsolved) + sum(
            len(item.unsolved) for item in self.unsolved_items
        )


@dataclass
class LocalResultSet:
    """Everything a component database returns for a local query."""

    db_name: str
    range_class: str
    rows: List[LocalResultRow] = field(default_factory=list)
    # Work accounting for the simulator.
    objects_scanned: int = 0
    comparisons: int = 0
    derefs: int = 0
    # Set when a secondary index restricted the scan (see
    # repro.objectdb.indexes); index candidates are random fetches.
    index_probe: Optional["IndexProbe"] = None

    @property
    def certain_rows(self) -> List[LocalResultRow]:
        return [row for row in self.rows if row.kind is RowKind.CERTAIN]

    @property
    def maybe_rows(self) -> List[LocalResultRow]:
        return [row for row in self.rows if row.kind is RowKind.MAYBE]

    def row_for(self, loid: LOid) -> Optional[LocalResultRow]:
        for row in self.rows:
            if row.loid == loid:
                return row
        return None


@dataclass(frozen=True)
class CheckRequest:
    """A request to check assistant objects at their home database.

    Paper, step BL_C2/BL_C3: the LOids of the assistant objects and the
    corresponding unsolved predicates are sent to the owning component
    database, which evaluates the predicates on those objects.
    """

    db_name: str
    class_name: str
    loids: Tuple[LOid, ...]
    predicates: Tuple[Predicate, ...]


@dataclass(frozen=True)
class BlockedAt:
    """A check that got stuck at another object holding the missing data.

    When the checking site walks a nested relative predicate and hits
    missing data on an object *other than* the checked assistant itself,
    the report names that blocking object and the remaining relative
    predicate.  The global site can then *chase* the block: issue a
    follow-up check round against the blocker's own isomeric copies.
    (When the assistant itself lacks the data, its copies are the other
    assistants of the same item — already checked — so no chase entry is
    produced.)

    This iterated protocol is our documented completion of the paper's
    single-hop check: without it, the localized strategies would leave
    entities maybe that CA resolves through multi-site integration of
    reference chains.
    """

    checked: LOid          # the assistant the request named
    predicate: Predicate   # the relative predicate that was being checked
    holder: LOid           # the object at which the walk got stuck
    holder_class: str      # its local class name
    remaining: Predicate   # predicate relative to the holder


@dataclass
class CheckReport:
    """Per-assistant, per-predicate verdicts from a check request.

    The paper's protocol returns the satisfied LOids; the certification
    rule additionally needs to distinguish *violated* (assistant object
    fails the predicate -> eliminate) from *unknown* (assistant object is
    itself missing the data -> remains maybe), so the report keeps all
    three verdict sets per predicate, plus the :class:`BlockedAt` records
    that drive chase rounds.
    """

    db_name: str
    class_name: str
    satisfied: Dict[Predicate, Tuple[LOid, ...]] = field(default_factory=dict)
    violated: Dict[Predicate, Tuple[LOid, ...]] = field(default_factory=dict)
    unknown: Dict[Predicate, Tuple[LOid, ...]] = field(default_factory=dict)
    blocked: Tuple[BlockedAt, ...] = ()
    objects_checked: int = 0
    comparisons: int = 0
    derefs: int = 0

    def verdict(self, predicate: Predicate, loid: LOid) -> Optional[str]:
        """Return 'satisfied' / 'violated' / 'unknown' for one assistant."""
        if loid in self.satisfied.get(predicate, ()):
            return "satisfied"
        if loid in self.violated.get(predicate, ()):
            return "violated"
        if loid in self.unknown.get(predicate, ()):
            return "unknown"
        return None
