"""Secondary indexes for component databases.

Two access methods over one attribute of one class:

* :class:`HashIndex` — equality lookups;
* :class:`SortedIndex` — ordering lookups (<, <=, >, >=) via bisection.

Both track **null entries** separately: an object whose indexed attribute
is null (or structurally missing) can never be *eliminated* by an index
probe — under three-valued semantics it remains a maybe candidate, so
every probe returns ``matches + nulls``.  That makes index-accelerated
local evaluation answer-identical to a full scan (tested).

Indexes are opt-in (``ComponentDatabase.create_index``); the paper's
experiments run scan-based, and the index ablation bench quantifies the
difference.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.query import Op
from repro.errors import ObjectStoreError
from repro.objectdb.ids import LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.values import MultiValue, is_null


class HashIndex:
    """Equality index: attribute value -> LOids (plus a null bucket)."""

    kind = "hash"

    def __init__(self, class_name: str, attribute: str) -> None:
        self.class_name = class_name
        self.attribute = attribute
        self._buckets: Dict[object, List[LOid]] = {}
        self._nulls: List[LOid] = []

    def add(self, obj: LocalObject) -> None:
        value = obj.get(self.attribute)
        if is_null(value):
            self._nulls.append(obj.loid)
            return
        members = list(value) if isinstance(value, MultiValue) else [value]
        for member in members:
            self._buckets.setdefault(member, []).append(obj.loid)

    def supports(self, op: Op) -> bool:
        return op in (Op.EQ, Op.CONTAINS)

    def probe(self, op: Op, operand: object) -> Tuple[List[LOid], List[LOid]]:
        """Return (possible matches, null candidates) for ``op operand``."""
        if not self.supports(op):
            raise ObjectStoreError(
                f"hash index on {self.attribute!r} cannot serve {op}"
            )
        return list(self._buckets.get(operand, ())), list(self._nulls)

    @property
    def entries(self) -> int:
        return sum(len(b) for b in self._buckets.values()) + len(self._nulls)

    @property
    def null_count(self) -> int:
        return len(self._nulls)


class SortedIndex:
    """Ordering index: a sorted (value, LOid) array probed by bisection."""

    kind = "sorted"

    def __init__(self, class_name: str, attribute: str) -> None:
        self.class_name = class_name
        self.attribute = attribute
        self._keys: List[object] = []
        self._loids: List[LOid] = []
        self._nulls: List[LOid] = []
        self._dirty: List[Tuple[object, LOid]] = []

    def add(self, obj: LocalObject) -> None:
        value = obj.get(self.attribute)
        if is_null(value):
            self._nulls.append(obj.loid)
            return
        if isinstance(value, MultiValue):
            for member in value:
                self._dirty.append((member, obj.loid))
        else:
            self._dirty.append((value, obj.loid))

    def _settle(self) -> None:
        if not self._dirty:
            return
        try:
            pairs = sorted(
                list(zip(self._keys, self._loids)) + self._dirty,
                key=lambda kv: kv[0],
            )
        except TypeError:
            raise ObjectStoreError(
                f"sorted index on {self.attribute!r} holds values of "
                "incomparable types"
            ) from None
        self._keys = [k for k, _ in pairs]
        self._loids = [l for _, l in pairs]
        self._dirty = []

    def supports(self, op: Op) -> bool:
        return op in (Op.EQ, Op.LT, Op.LE, Op.GT, Op.GE)

    def probe(self, op: Op, operand: object) -> Tuple[List[LOid], List[LOid]]:
        """Return (possible matches, null candidates) for ``op operand``."""
        if not self.supports(op):
            raise ObjectStoreError(
                f"sorted index on {self.attribute!r} cannot serve {op}"
            )
        self._settle()
        lo = bisect.bisect_left(self._keys, operand)
        hi = bisect.bisect_right(self._keys, operand)
        if op is Op.EQ:
            selected = self._loids[lo:hi]
        elif op is Op.LT:
            selected = self._loids[:lo]
        elif op is Op.LE:
            selected = self._loids[:hi]
        elif op is Op.GT:
            selected = self._loids[hi:]
        else:  # GE
            selected = self._loids[lo:]
        return list(selected), list(self._nulls)

    @property
    def entries(self) -> int:
        self._settle()
        return len(self._keys) + len(self._nulls)

    @property
    def null_count(self) -> int:
        return len(self._nulls)


@dataclass
class IndexProbe:
    """Outcome of choosing/using an index for a local query."""

    index_kind: str
    attribute: str
    candidates: int
    comparisons: int  # probe cost charged to the CPU


class IndexManager:
    """All secondary indexes of one component database."""

    def __init__(self) -> None:
        self._indexes: Dict[Tuple[str, str], object] = {}

    def create(
        self,
        class_name: str,
        attribute: str,
        objects: Iterable[LocalObject],
        kind: str = "hash",
    ):
        """Build (or rebuild) an index over the current extent."""
        if kind == "hash":
            index = HashIndex(class_name, attribute)
        elif kind == "sorted":
            index = SortedIndex(class_name, attribute)
        else:
            raise ObjectStoreError(f"unknown index kind {kind!r}")
        for obj in objects:
            index.add(obj)
        self._indexes[(class_name, attribute)] = index
        return index

    def maintain(self, obj: LocalObject) -> None:
        """Keep indexes current on insert."""
        for (class_name, _attr), index in self._indexes.items():
            if class_name == obj.class_name:
                index.add(obj)  # type: ignore[attr-defined]

    def refresh(self, class_name: str, objects: Iterable[LocalObject]) -> int:
        """Rebuild every index on *class_name* from the live extent.

        :meth:`maintain` only covers inserts; an in-place attribute
        mutation leaves a built index stale (it snapshots values at build
        time).  The mutation hooks
        (:meth:`~repro.objectdb.database.ComponentDatabase.note_mutation`)
        call this so probes never serve pre-mutation buckets.  Returns
        the number of indexes rebuilt.
        """
        targets = [
            (attribute, index)
            for (cls, attribute), index in self._indexes.items()
            if cls == class_name
        ]
        if not targets:
            return 0
        snapshot = list(objects)
        for attribute, index in targets:
            self.create(
                class_name,
                attribute,
                snapshot,
                getattr(index, "kind", "hash"),
            )
        return len(targets)

    def drop(self, class_name: str, attribute: str) -> bool:
        """Remove one index; True when it existed (no-op when absent)."""
        return self._indexes.pop((class_name, attribute), None) is not None

    def get(self, class_name: str, attribute: str):
        return self._indexes.get((class_name, attribute))

    def best_for(self, class_name: str, attribute: str, op: Op):
        """The index able to serve ``attribute op _``, if any."""
        index = self.get(class_name, attribute)
        if index is not None and index.supports(op):  # type: ignore[attr-defined]
            return index
        return None

    def __len__(self) -> int:
        return len(self._indexes)
