"""Stored objects of a component database.

A :class:`LocalObject` is one object instance in a component database: a
LOid, the class it belongs to, and a value per attribute.  Attributes whose
value was never set, or set to ``NULL``, are *missing* for this object
(paper, Section 2.1: original null values are one kind of missing data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Tuple

from repro.errors import ObjectStoreError
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.schema import ClassDef
from repro.objectdb.values import MultiValue, NULL, Value, is_null


@dataclass
class LocalObject:
    """One object instance stored at a component database.

    Attributes:
        loid: the object's local identifier.
        class_name: the component class the object belongs to.
        values: attribute name -> stored value.  Absent keys read as NULL.
    """

    loid: LOid
    class_name: str
    values: Dict[str, Value] = field(default_factory=dict)

    def get(self, attribute: str) -> Value:
        """Return the stored value of *attribute*, or NULL when missing."""
        return self.values.get(attribute, NULL)

    def has_value(self, attribute: str) -> bool:
        """True when *attribute* holds a non-null value on this object."""
        return not is_null(self.get(attribute))

    def null_attributes(self) -> List[str]:
        """Names of attributes stored explicitly as NULL."""
        return [name for name, value in self.values.items() if is_null(value)]

    def project(self, attributes: Tuple[str, ...]) -> "LocalObject":
        """Return a copy of this object restricted to *attributes*.

        Used by the optimization in step CA_C1: objects are projected on
        the LOid and the attributes involved in the query before being
        transferred to the global processing site.
        """
        return LocalObject(
            loid=self.loid,
            class_name=self.class_name,
            values={
                name: self.values[name]
                for name in attributes
                if name in self.values
            },
        )

    def validate_against(self, cdef: ClassDef) -> None:
        """Raise :class:`ObjectStoreError` if values violate *cdef*.

        Checks that every stored attribute is declared, that complex
        attributes hold references (or NULL), and that primitive attributes
        do not hold references.
        """
        if cdef.name != self.class_name:
            raise ObjectStoreError(
                f"object {self.loid} has class {self.class_name!r} but was "
                f"validated against {cdef.name!r}"
            )
        for name, value in self.values.items():
            if not cdef.has_attribute(name):
                raise ObjectStoreError(
                    f"object {self.loid} stores undeclared attribute {name!r}"
                )
            if is_null(value):
                continue
            attr = cdef.attribute(name)
            members = list(value) if isinstance(value, MultiValue) else [value]
            for member in members:
                is_ref = isinstance(member, (LOid, GOid))
                if attr.is_complex and not is_ref:
                    raise ObjectStoreError(
                        f"object {self.loid}: complex attribute {name!r} "
                        f"holds non-reference {member!r}"
                    )
                if not attr.is_complex and is_ref:
                    raise ObjectStoreError(
                        f"object {self.loid}: primitive attribute {name!r} "
                        f"holds reference {member!r}"
                    )
            if isinstance(value, MultiValue) and not attr.multi_valued:
                raise ObjectStoreError(
                    f"object {self.loid}: attribute {name!r} is single-valued "
                    "but holds a MultiValue"
                )


@dataclass
class IntegratedObject:
    """An object of a *global* class materialized at the processing site.

    Produced by the outerjoin integration
    (:mod:`repro.integration.outerjoin`): attribute values are merged from
    all isomeric objects, and complex attributes reference GOids rather
    than LOids (paper, Figure 6).

    Attributes:
        goid: the global identifier of the real-world entity.
        class_name: the global class name.
        values: attribute name -> merged value (GOid refs for complex ones).
        sources: the LOids of the isomeric objects that contributed.
    """

    goid: GOid
    class_name: str
    values: Dict[str, Value] = field(default_factory=dict)
    sources: Tuple[LOid, ...] = ()

    def get(self, attribute: str) -> Value:
        return self.values.get(attribute, NULL)

    def has_value(self, attribute: str) -> bool:
        return not is_null(self.get(attribute))


def iter_non_null(
    objects: Mapping[LOid, LocalObject], attribute: str
) -> Iterator[LocalObject]:
    """Yield the objects in *objects* holding a non-null *attribute*."""
    for obj in objects.values():
        if obj.has_value(attribute):
            yield obj
