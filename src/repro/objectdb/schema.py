"""Object schemas: classes, attributes and composition hierarchies.

A component database publishes a :class:`ComponentSchema` made of
:class:`ClassDef` entries.  Attributes are either *primitive* (int, float,
str, bool) or *complex*: a complex attribute's value is a reference to an
object of its ``domain`` class, which makes classes form a *class
composition hierarchy* — the structure traversed by the paper's nested
predicates / path expressions (``X.advisor.department.name``).

The paper restricts itself to composition hierarchies (no subclass
hierarchy), and so do we.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownAttributeError, UnknownClassError


class AttrKind(enum.Enum):
    """Whether an attribute holds a primitive value or an object reference."""

    PRIMITIVE = "primitive"
    COMPLEX = "complex"


@dataclass(frozen=True)
class AttributeDef:
    """Definition of one attribute of a class.

    Attributes:
        name: the attribute name.
        kind: primitive or complex.
        domain: for complex attributes, the referenced class name; None for
            primitive attributes.
        multi_valued: True when the attribute holds a set of values
            (extension for the paper's future-work multi-valued global
            attributes).
    """

    name: str
    kind: AttrKind = AttrKind.PRIMITIVE
    domain: Optional[str] = None
    multi_valued: bool = False

    def __post_init__(self) -> None:
        if self.kind is AttrKind.COMPLEX and not self.domain:
            raise SchemaError(
                f"complex attribute {self.name!r} must declare a domain class"
            )
        if self.kind is AttrKind.PRIMITIVE and self.domain is not None:
            raise SchemaError(
                f"primitive attribute {self.name!r} must not declare a domain"
            )

    @property
    def is_complex(self) -> bool:
        return self.kind is AttrKind.COMPLEX


def primitive(name: str, multi_valued: bool = False) -> AttributeDef:
    """Shorthand constructor for a primitive attribute definition."""
    return AttributeDef(name=name, kind=AttrKind.PRIMITIVE, multi_valued=multi_valued)


def complex_attr(name: str, domain: str, multi_valued: bool = False) -> AttributeDef:
    """Shorthand constructor for a complex (reference) attribute definition."""
    return AttributeDef(
        name=name, kind=AttrKind.COMPLEX, domain=domain, multi_valued=multi_valued
    )


@dataclass(frozen=True)
class ClassDef:
    """Definition of one class: a name plus an ordered attribute mapping."""

    name: str
    attributes: Tuple[AttributeDef, ...]

    def __post_init__(self) -> None:
        seen = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"class {self.name!r} declares attribute "
                    f"{attr.name!r} more than once"
                )
            seen.add(attr.name)

    @classmethod
    def of(cls, name: str, attributes: Iterable[AttributeDef]) -> "ClassDef":
        return cls(name=name, attributes=tuple(attributes))

    def attribute_names(self) -> List[str]:
        return [attr.name for attr in self.attributes]

    def has_attribute(self, name: str) -> bool:
        return any(attr.name == name for attr in self.attributes)

    def attribute(self, name: str) -> AttributeDef:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise UnknownAttributeError(self.name, name)

    def complex_attributes(self) -> List[AttributeDef]:
        return [attr for attr in self.attributes if attr.is_complex]

    def primitive_attributes(self) -> List[AttributeDef]:
        return [attr for attr in self.attributes if not attr.is_complex]


class Schema:
    """A collection of class definitions forming a composition hierarchy.

    Used both for component schemas (via :class:`ComponentSchema`) and as a
    base for the integrated global schema
    (:class:`repro.integration.global_schema.GlobalSchema`).
    """

    def __init__(self, classes: Iterable[ClassDef]) -> None:
        self._classes: Dict[str, ClassDef] = {}
        for cdef in classes:
            if cdef.name in self._classes:
                raise SchemaError(f"duplicate class definition {cdef.name!r}")
            self._classes[cdef.name] = cdef
        self._validate_domains()

    def _validate_domains(self) -> None:
        for cdef in self._classes.values():
            for attr in cdef.complex_attributes():
                if attr.domain not in self._classes:
                    raise SchemaError(
                        f"attribute {cdef.name}.{attr.name} references "
                        f"undefined class {attr.domain!r}"
                    )

    # --- lookups ----------------------------------------------------------

    def __contains__(self, class_name: str) -> bool:
        return class_name in self._classes

    def __iter__(self) -> Iterator[ClassDef]:
        return iter(self._classes.values())

    def __len__(self) -> int:
        return len(self._classes)

    @property
    def class_names(self) -> List[str]:
        return list(self._classes)

    def cls(self, class_name: str) -> ClassDef:
        try:
            return self._classes[class_name]
        except KeyError:
            raise UnknownClassError(class_name) from None

    # --- path expressions -------------------------------------------------

    def resolve_path(
        self, root_class: str, path: Sequence[str]
    ) -> List[AttributeDef]:
        """Type-check *path* from *root_class*; return the attribute chain.

        A path like ``("advisor", "department", "name")`` from ``Student``
        resolves to the attribute definitions for ``Student.advisor``,
        ``Teacher.department`` and ``Department.name``.  Every step except
        possibly the last must be a complex attribute.

        Raises:
            UnknownClassError: if *root_class* is undefined.
            UnknownAttributeError: if a step does not exist on its class.
            SchemaError: if a non-final step is primitive.
        """
        if not path:
            raise SchemaError("path expression must have at least one step")
        chain: List[AttributeDef] = []
        current = self.cls(root_class)
        for index, step in enumerate(path):
            attr = current.attribute(step)
            chain.append(attr)
            is_last = index == len(path) - 1
            if not is_last:
                if not attr.is_complex:
                    raise SchemaError(
                        f"path step {step!r} on class {current.name!r} is "
                        "primitive but is not the final step"
                    )
                current = self.cls(attr.domain)  # type: ignore[arg-type]
        return chain

    def classes_on_path(
        self, root_class: str, path: Sequence[str]
    ) -> List[str]:
        """Return the class visited *before* each path step.

        ``classes_on_path("Student", ("advisor", "name"))`` returns
        ``["Student", "Teacher"]``: the class on which each step's attribute
        is defined.
        """
        chain = self.resolve_path(root_class, path)
        classes = [root_class]
        for attr in chain[:-1]:
            classes.append(attr.domain)  # type: ignore[arg-type]
        return classes


@dataclass
class ComponentSchema:
    """The schema of one component database, identified by its site name."""

    db_name: str
    schema: Schema = field(default_factory=lambda: Schema(()))

    @classmethod
    def of(cls, db_name: str, classes: Iterable[ClassDef]) -> "ComponentSchema":
        return cls(db_name=db_name, schema=Schema(classes))

    def __contains__(self, class_name: str) -> bool:
        return class_name in self.schema

    def cls(self, class_name: str) -> ClassDef:
        return self.schema.cls(class_name)

    @property
    def class_names(self) -> List[str]:
        return self.schema.class_names


def missing_attributes(
    global_attrs: Mapping[str, AttributeDef], constituent: ClassDef
) -> List[AttributeDef]:
    """Attributes of the global class that *constituent* does not define.

    These are the paper's *missing attributes* of the constituent class:
    "the attributes appearing in the global class but not defined in
    constituent class C" (Section 1).  Data for them is missing (null) for
    every object of the constituent class.
    """
    return [
        attr
        for name, attr in global_attrs.items()
        if not constituent.has_attribute(name)
    ]
