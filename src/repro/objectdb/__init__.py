"""Per-site object database substrate.

Exposes the object data model (identifiers, values, schemas, stored
objects), the in-memory :class:`~repro.objectdb.database.ComponentDatabase`
engine, local query/result types, and the object-signature auxiliary
structure.

Re-exports are lazy (PEP 562): the engine modules build on the query /
predicate layer in :mod:`repro.core`, which in turn uses this package's
leaf data-model modules — resolving names on first access keeps package
initialization cycle-free in both import orders.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "AttrKind": "repro.objectdb.schema",
    "AttributeDef": "repro.objectdb.schema",
    "CheckReport": "repro.objectdb.local_query",
    "CheckRequest": "repro.objectdb.local_query",
    "ClassDef": "repro.objectdb.schema",
    "ComponentDatabase": "repro.objectdb.database",
    "ComponentSchema": "repro.objectdb.schema",
    "GOid": "repro.objectdb.ids",
    "IntegratedObject": "repro.objectdb.objects",
    "LOid": "repro.objectdb.ids",
    "LocalObject": "repro.objectdb.objects",
    "LocalQuery": "repro.objectdb.local_query",
    "LocalResultRow": "repro.objectdb.local_query",
    "LocalResultSet": "repro.objectdb.local_query",
    "MultiValue": "repro.objectdb.values",
    "NULL": "repro.objectdb.values",
    "Null": "repro.objectdb.values",
    "RemovedPredicate": "repro.objectdb.local_query",
    "RowKind": "repro.objectdb.local_query",
    "Schema": "repro.objectdb.schema",
    "Signature": "repro.objectdb.signatures",
    "SignatureCatalog": "repro.objectdb.signatures",
    "SignaturePrecheck": "repro.objectdb.signatures",
    "UnsolvedItem": "repro.objectdb.local_query",
    "UnsolvedPredicateOnObject": "repro.objectdb.local_query",
    "UnsolvedScan": "repro.objectdb.database",
    "complex_attr": "repro.objectdb.schema",
    "is_null": "repro.objectdb.values",
    "is_primitive": "repro.objectdb.values",
    "is_reference": "repro.objectdb.values",
    "make_signature": "repro.objectdb.signatures",
    "missing_attributes": "repro.objectdb.schema",
    "primitive": "repro.objectdb.schema",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
