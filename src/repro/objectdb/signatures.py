"""Object signatures: superimposed-coding filters over attribute values.

The paper's Section 3 and future work (Section 5) propose an *auxiliary
structure storing object signatures* to reduce data transfer in the
localized approaches: before shipping assistant-object LOids to a remote
site for checking, the requesting site tests the replicated signatures and
drops assistants that certainly violate an equality predicate.  Table 1
sizes a signature at ``S_s = 32`` bytes and Table 2 gives the signature
filter a selectivity ``R_ss`` slightly above the true predicate
selectivity (signatures admit false positives, never false negatives).

We implement classic superimposed coding: each ``(attribute, value)`` pair
sets ``k`` bits (derived from a stable hash) in a ``width``-bit vector;
an equality predicate *may* be satisfied iff all bits of its own code are
set in the object's signature.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.core.query import Op, Predicate
from repro.objectdb.ids import LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.values import MultiValue, is_null

#: Default signature width in bits (S_s = 32 bytes in Table 1).
DEFAULT_WIDTH_BITS = 256
#: Default number of bits set per (attribute, value) pair.
DEFAULT_BITS_PER_CODE = 4


def _code(attribute: str, value: object, width: int, k: int) -> int:
    """Deterministic k-bit code for an (attribute, value) pair."""
    mask = 0
    payload = f"{attribute}\x00{type(value).__name__}\x00{value!r}".encode()
    counter = 0
    while bin(mask).count("1") < k:
        digest = hashlib.blake2b(
            payload + counter.to_bytes(4, "little"), digest_size=8
        ).digest()
        bit = int.from_bytes(digest, "little") % width
        mask |= 1 << bit
        counter += 1
    return mask


@dataclass(frozen=True)
class Signature:
    """A fixed-width bit vector summarizing one object's attribute values."""

    bits: int
    width: int = DEFAULT_WIDTH_BITS

    def superset_of(self, mask: int) -> bool:
        """True when every bit of *mask* is set in this signature."""
        return (self.bits & mask) == mask

    @property
    def popcount(self) -> int:
        return bin(self.bits).count("1")

    @property
    def size_bytes(self) -> int:
        return self.width // 8


def make_signature(
    obj: LocalObject,
    attributes: Optional[Iterable[str]] = None,
    width: int = DEFAULT_WIDTH_BITS,
    k: int = DEFAULT_BITS_PER_CODE,
) -> Signature:
    """Build the signature of *obj* over *attributes* (default: all).

    Only primitive, non-null values are encoded; complex references and
    nulls contribute nothing (a signature can never prove a null attribute
    violates a predicate — absence of bits is only conclusive for values
    that were encoded, so callers must not filter objects whose attribute
    is null; see :class:`SignatureCatalog.may_satisfy`).
    """
    bits = 0
    names = tuple(attributes) if attributes is not None else tuple(obj.values)
    for name in names:
        value = obj.get(name)
        if is_null(value):
            continue
        members = list(value) if isinstance(value, MultiValue) else [value]
        for member in members:
            if isinstance(member, (int, float, str, bool)):
                bits |= _code(name, member, width, k)
    return Signature(bits=bits, width=width)


def predicate_mask(
    attribute: str,
    operand: object,
    width: int = DEFAULT_WIDTH_BITS,
    k: int = DEFAULT_BITS_PER_CODE,
) -> int:
    """The code an equality predicate's operand would set."""
    return _code(attribute, operand, width, k)


@dataclass
class SignatureCatalog:
    """Replicated per-class signature tables, indexed by LOid.

    The catalog additionally remembers, per object, which attributes were
    encoded with a non-null value, so that filtering stays sound: an
    object whose attribute was null cannot be dropped by the filter (its
    real value is unknown — the assistant must still be checked).
    """

    width: int = DEFAULT_WIDTH_BITS
    k: int = DEFAULT_BITS_PER_CODE
    _tables: Dict[str, Dict[LOid, Signature]] = field(default_factory=dict)
    _encoded: Dict[LOid, frozenset] = field(default_factory=dict)
    #: Memoized predicate masks keyed by (attribute, operand): the
    #: blake2b code of an operand is recomputed for every probe
    #: otherwise.  Unhashable operands skip the cache.
    _mask_cache: Dict[Tuple[str, object], int] = field(default_factory=dict)

    def _predicate_mask(self, attribute: str, operand: object) -> int:
        """The operand's code, memoized per (attribute, operand)."""
        try:
            key = (attribute, operand)
            cached = self._mask_cache.get(key)
        except TypeError:
            return predicate_mask(attribute, operand, self.width, self.k)
        if cached is None:
            cached = predicate_mask(attribute, operand, self.width, self.k)
            self._mask_cache[key] = cached
        return cached

    def index_object(
        self, obj: LocalObject, attributes: Optional[Iterable[str]] = None
    ) -> Signature:
        """Compute, store and return the signature of *obj*."""
        names = tuple(attributes) if attributes is not None else tuple(obj.values)
        signature = make_signature(obj, names, self.width, self.k)
        table = self._tables.setdefault(obj.class_name, {})
        table[obj.loid] = signature
        self._encoded[obj.loid] = frozenset(
            name
            for name in names
            if not is_null(obj.get(name))
            and not isinstance(obj.get(name), (LOid,))
        )
        return signature

    def index_extent(self, objects: Iterable[LocalObject]) -> int:
        count = 0
        for obj in objects:
            self.index_object(obj)
            count += 1
        return count

    def lookup(self, class_name: str, loid: LOid) -> Optional[Signature]:
        return self._tables.get(class_name, {}).get(loid)

    def may_satisfy(
        self, class_name: str, loid: LOid, predicate: Predicate
    ) -> bool:
        """Signature test: can *loid* possibly satisfy *predicate*?

        Returns True (do not filter) whenever the test is inconclusive:
        unknown object, non-equality operator, nested path (the signature
        only covers the object's own attributes), or an attribute that was
        null at indexing time.  Returns False only when the object's
        encoded value provably differs from the operand — which is exactly
        the no-false-negatives guarantee.
        """
        if predicate.op not in (Op.EQ, Op.CONTAINS):
            return True
        if len(predicate.path.steps) != 1:
            return True
        signature = self.lookup(class_name, loid)
        if signature is None:
            return True
        attribute = predicate.path.first
        if attribute not in self._encoded.get(loid, frozenset()):
            return True
        mask = self._predicate_mask(attribute, predicate.operand)
        return signature.superset_of(mask)

    def precheck_assistants(
        self,
        class_name: str,
        loids: Iterable[LOid],
        predicates: Iterable[Predicate],
    ) -> "SignaturePrecheck":
        """Pre-check assistants locally against replicated signatures.

        A signature mismatch on an equality predicate is a *definitive*
        verdict: the assistant's value provably differs from the operand,
        i.e. the assistant **violates** the predicate — the certification
        rule can eliminate without any remote check.  Assistants passing
        (or inconclusive for) every predicate still need remote checking
        because signature matches may be false positives.

        Vectorized probe: each predicate's applicability and operand
        mask are resolved once up front, then every assistant tests a
        precomputed mask against its signature.  Verdicts and the
        comparison charge (one per (assistant, predicate), conclusive or
        not) are identical to probing :meth:`may_satisfy` pairwise.
        """
        predicates = tuple(predicates)
        # Hoisted per-predicate probe state: None marks a predicate the
        # signature test can never settle (non-equality op or nested
        # path); otherwise (attribute, operand mask).
        probes = []
        for predicate in predicates:
            if (
                predicate.op not in (Op.EQ, Op.CONTAINS)
                or len(predicate.path.steps) != 1
            ):
                probes.append((predicate, None, 0))
                continue
            attribute = predicate.path.first
            probes.append((
                predicate,
                attribute,
                self._predicate_mask(attribute, predicate.operand),
            ))
        table = self._tables.get(class_name, {})
        encoded_of = self._encoded
        to_check = []
        violated: Dict[Predicate, list] = {p: [] for p in predicates}
        comparisons = 0
        empty = frozenset()
        for loid in loids:
            comparisons += len(probes)
            signature = table.get(loid)
            if signature is None:
                to_check.append(loid)
                continue
            keep = True
            encoded = encoded_of.get(loid, empty)
            bits = signature.bits
            for predicate, attribute, mask in probes:
                if attribute is None or attribute not in encoded:
                    continue  # inconclusive: must not filter
                if (bits & mask) != mask:
                    violated[predicate].append(loid)
                    keep = False
            if keep:
                to_check.append(loid)
        return SignaturePrecheck(
            to_check=tuple(to_check),
            violated={p: tuple(v) for p, v in violated.items() if v},
            comparisons=comparisons,
        )

    # --- incremental maintenance (mutation hooks) -----------------------

    def update_object(
        self, obj: LocalObject, attributes: Optional[Iterable[str]] = None
    ) -> Signature:
        """Re-sign one mutated object in place.

        :meth:`index_object` already overwrites, so this is the same
        operation under the name the mutation hooks
        (:meth:`~repro.core.system.DistributedSystem.note_mutation`)
        call — signatures are maintained incrementally instead of
        rebuilding the whole catalog per change.
        """
        return self.index_object(obj, attributes)

    def remove_object(self, class_name: str, loid: LOid) -> bool:
        """Drop one object's signature (True when it was present)."""
        table = self._tables.get(class_name)
        removed = False
        if table is not None and table.pop(loid, None) is not None:
            removed = True
            if not table:
                del self._tables[class_name]
        self._encoded.pop(loid, None)
        return removed

    def drop_site(self, db_name: str) -> int:
        """Drop every signature of objects homed at *db_name*.

        Called when a site is excised from the federation; returns the
        number of signatures dropped.
        """
        dropped = 0
        for class_name in list(self._tables):
            table = self._tables[class_name]
            victims = [loid for loid in table if loid.db == db_name]
            for loid in victims:
                del table[loid]
                self._encoded.pop(loid, None)
                dropped += 1
            if not table:
                del self._tables[class_name]
        return dropped


@dataclass(frozen=True)
class SignaturePrecheck:
    """Outcome of a local signature pre-check of assistant objects.

    Attributes:
        to_check: assistants that must still be checked remotely.
        violated: per-predicate assistants that provably violate it.
        comparisons: signature comparisons performed (cost model).
    """

    to_check: Tuple[LOid, ...]
    violated: Dict[Predicate, Tuple[LOid, ...]]
    comparisons: int
