"""Object identifiers: local (LOid) and global (GOid).

In a distributed heterogeneous object database system every stored object
carries a *local* object identifier that is only meaningful within its own
component database.  The same real-world entity may be stored at several
sites under incompatible LOids ("isomeric objects"); the federation assigns
one *global* object identifier (GOid) per real-world entity, shared by all
of its isomeric objects (paper, Section 2.2).

Both identifier types are small frozen dataclasses so they can be used as
dictionary keys and set members, which the mapping tables and the outerjoin
integration rely on heavily.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class LOid:
    """A local object identifier, unique within one component database.

    Attributes:
        db: name of the component database that owns the object.
        value: the identifier string local to that database (e.g. ``"s1"``).
    """

    db: str
    value: str

    def __str__(self) -> str:
        return f"{self.value}@{self.db}"


@dataclass(frozen=True, order=True)
class GOid:
    """A global object identifier, unique per real-world entity.

    All isomeric objects (objects in different component databases that
    represent the same real-world entity) share one GOid.
    """

    value: str

    def __str__(self) -> str:
        return self.value
