"""Attribute values, including the NULL sentinel and multi-valued sets.

An attribute value stored by a component database is one of:

* a *primitive* value — ``int``, ``float``, ``str`` or ``bool``;
* a *reference* value — an :class:`~repro.objectdb.ids.LOid` pointing at
  another object in the same database (complex attribute);
* after global integration, a :class:`~repro.objectdb.ids.GOid` reference;
* ``NULL`` — the distinguished missing-data marker (paper, Section 2.1:
  "if an object contains a null value for an attribute, the attribute is
  considered to be a missing attribute for the object");
* a :class:`MultiValue` — an immutable set of values, used by the
  multi-valued-attribute extension (paper, Section 5) where a global
  attribute collects values contributed by different component databases.

``NULL`` is a singleton: identity comparison (``value is NULL``) is the
canonical missing-data test, mirroring how SQL systems treat null as a
marker rather than a value.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Tuple, Union

from repro.objectdb.ids import GOid, LOid


class Null:
    """Singleton marker for missing data.

    ``Null`` compares equal only to itself and is falsy.  Arithmetic or
    ordering comparisons against it are *not* defined here on purpose:
    three-valued evaluation lives in :mod:`repro.core.tvl` and
    :mod:`repro.core.predicates`, which check for ``NULL`` explicitly and
    yield UNKNOWN instead of raising.
    """

    _instance: "Null" = None  # type: ignore[assignment]

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash("repro.objectdb.values.NULL")

    def __eq__(self, other: object) -> bool:
        return other is self

    def __reduce__(self) -> Tuple[Any, ...]:
        # Keep the singleton property across pickling.
        return (Null, ())


NULL = Null()

Primitive = Union[int, float, str, bool]
Value = Union[Primitive, LOid, GOid, Null, "MultiValue"]


class MultiValue:
    """An immutable set of values for a multi-valued attribute.

    The paper's future-work section describes global attributes "whose
    values come from attributes in different component databases".  During
    integration (:mod:`repro.integration.outerjoin`) the distinct non-null
    contributions of all isomeric objects are collected into one
    ``MultiValue``.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Iterable[Value]) -> None:
        flattened = []
        for value in values:
            if isinstance(value, MultiValue):
                flattened.extend(value)
            elif value is not NULL:
                flattened.append(value)
        self._values: FrozenSet[Value] = frozenset(flattened)

    def __iter__(self):
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, item: object) -> bool:
        return item in self._values

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MultiValue) and self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(sorted(repr(v) for v in self._values))
        return f"MultiValue({{{inner}}})"

    @property
    def values(self) -> FrozenSet[Value]:
        """The underlying frozen set of member values."""
        return self._values


def is_null(value: object) -> bool:
    """Return True when *value* is the missing-data marker.

    An empty :class:`MultiValue` also counts as missing: it means no
    component database contributed a value.
    """
    if value is NULL:
        return True
    return isinstance(value, MultiValue) and len(value) == 0


def is_reference(value: object) -> bool:
    """Return True when *value* references another object (LOid or GOid)."""
    return isinstance(value, (LOid, GOid))


def is_primitive(value: object) -> bool:
    """Return True when *value* is a primitive attribute value."""
    return isinstance(value, (int, float, str, bool)) and not isinstance(
        value, Null
    )
