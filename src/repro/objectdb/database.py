"""The per-site object database engine.

:class:`ComponentDatabase` stores class extents for one site and executes
the two kinds of requests a site receives in the paper's protocols:

* a **local query** (steps BL_C1/PL_C2): scan the local root class,
  evaluate the local predicates under 3VL, and report surviving rows with
  their unsolved predicates and unsolved items;
* an **assistant check** (steps BL_C3/PL_C3): retrieve a list of objects
  by LOid and evaluate appended unsolved predicates on them.

It also serves the centralized strategy's full-extent export (step CA_C1),
projected on the attributes the query needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.predicates import (
    EvalMeter,
    evaluate_dnf,
    evaluate_predicate,
    walk_path,
)
from repro.core.query import Path, Predicate
from repro.core.tvl import TV
from repro.errors import ObjectStoreError, UnknownClassError
from repro.objectdb.columnar import (
    ColumnarExtent,
    FALSE_CODE,
    TV_OF_CODE,
    UNKNOWN_CODE,
    UnsolvedEntry,
)
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.indexes import IndexManager, IndexProbe
from repro.objectdb.local_query import (
    BatchPredicateSets,
    BlockedAt,
    CheckReport,
    CheckRequest,
    LocalQuery,
    LocalResultRow,
    LocalResultSet,
    RemovedPredicate,
    RowKind,
    UnsolvedItem,
    UnsolvedPredicateOnObject,
    partition_codes,
)
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import ComponentSchema
from repro.objectdb.values import NULL, Value, is_null


@dataclass
class UnsolvedScan:
    """Result of a phase-O-first scan (PL_C1): unsolved data per root object."""

    db_name: str
    range_class: str
    objects_scanned: int = 0
    per_root: Dict[
        LOid,
        Tuple[Tuple[UnsolvedPredicateOnObject, ...], Tuple[UnsolvedItem, ...]],
    ] = field(default_factory=dict)

    def all_items(self) -> List[UnsolvedItem]:
        items: List[UnsolvedItem] = []
        for _unsolved, row_items in self.per_root.values():
            items.extend(row_items)
        return items


class ComponentDatabase:
    """An in-memory object database for one federation site."""

    def __init__(self, schema: ComponentSchema) -> None:
        self.schema = schema
        self._extents: Dict[str, Dict[LOid, LocalObject]] = {
            name: {} for name in schema.class_names
        }
        self.indexes = IndexManager()
        #: O(1) LOid lookup across all extents (mirrors :meth:`get`'s
        #: schema-order scan semantics for cross-class duplicates).
        self._by_loid: Dict[LOid, LocalObject] = {}
        #: Bumped on every insert and every :meth:`note_mutation`; keys
        #: the columnar extent views so a stale column can never be read.
        self.data_version = 0
        self._columnar: Dict[str, ColumnarExtent] = {}

    @property
    def name(self) -> str:
        return self.schema.db_name

    # --- storage ------------------------------------------------------------

    def insert(self, obj: LocalObject, validate: bool = True) -> None:
        """Insert one object; raises on duplicates or schema violations."""
        if obj.class_name not in self._extents:
            raise UnknownClassError(obj.class_name, where=f"db {self.name!r}")
        if obj.loid.db != self.name:
            raise ObjectStoreError(
                f"object {obj.loid} belongs to db {obj.loid.db!r}, "
                f"not {self.name!r}"
            )
        extent = self._extents[obj.class_name]
        if obj.loid in extent:
            raise ObjectStoreError(f"duplicate LOid {obj.loid}")
        if validate:
            obj.validate_against(self.schema.cls(obj.class_name))
        extent[obj.loid] = obj
        if obj.loid not in self._by_loid:
            self._by_loid[obj.loid] = obj
        else:
            # Cross-class duplicate LOids: keep the schema-order winner
            # the linear scan used to return.
            for other in self._extents.values():
                found = other.get(obj.loid)
                if found is not None:
                    self._by_loid[obj.loid] = found
                    break
        self.indexes.maintain(obj)
        self.data_version += 1

    def bulk_insert(self, objects: Iterable[LocalObject], validate: bool = False) -> int:
        """Insert many objects (validation off by default for generators)."""
        count = 0
        for obj in objects:
            self.insert(obj, validate=validate)
            count += 1
        return count

    def get(self, loid: LOid) -> Optional[LocalObject]:
        """Fetch an object by LOid (any class), or None."""
        return self._by_loid.get(loid)

    def note_mutation(self, class_name: Optional[str] = None) -> None:
        """Record an in-place mutation of stored objects' attributes.

        A built secondary index snapshots attribute values and a columnar
        view snapshots whole extents, so mutating ``obj.values`` without
        this hook would leave both stale.  Bumps :attr:`data_version`
        (invalidating every columnar view lazily) and rebuilds the
        mutated class's indexes from the live extent.  Call with no
        *class_name* when the mutated class is unknown; then every
        class's indexes are rebuilt.

        :meth:`DistributedSystem.note_mutation
        <repro.core.system.DistributedSystem.note_mutation>` wraps this
        with signature-catalog and decomposition-cache invalidation.
        """
        self.data_version += 1
        self._columnar.clear()
        if class_name is None:
            for name, extent in self._extents.items():
                self.indexes.refresh(name, extent.values())
        else:
            self.indexes.refresh(
                class_name, self.extent(class_name).values()
            )

    def columnar_extent(self, class_name: str) -> ColumnarExtent:
        """The versioned columnar view of one class extent (cached)."""
        cached = self._columnar.get(class_name)
        if cached is None or cached.version != self.data_version:
            cached = ColumnarExtent(self, class_name)
            self._columnar[class_name] = cached
        return cached

    def extent(self, class_name: str) -> Dict[LOid, LocalObject]:
        """The stored objects of one class (live mapping; do not mutate)."""
        try:
            return self._extents[class_name]
        except KeyError:
            raise UnknownClassError(class_name, where=f"db {self.name!r}") from None

    def count(self, class_name: str) -> int:
        return len(self.extent(class_name))

    def deref(self, ref: Union[LOid, GOid]) -> Optional[LocalObject]:
        """Dereference a local reference; foreign/global refs resolve to None."""
        if isinstance(ref, LOid) and ref.db == self.name:
            return self.get(ref)
        return None

    def create_index(
        self, class_name: str, attribute: str, kind: str = "hash"
    ) -> None:
        """Build a secondary index over one attribute of one class.

        Indexed local evaluation (:meth:`execute_local`) restricts its
        scan to the probe's candidates — answer-identical to a full scan
        because null holders are always kept as maybe candidates.
        """
        if class_name not in self._extents:
            raise UnknownClassError(class_name, where=f"db {self.name!r}")
        if not self.schema.cls(class_name).has_attribute(attribute):
            raise ObjectStoreError(
                f"cannot index undeclared attribute {attribute!r} of "
                f"{class_name!r}"
            )
        self.indexes.create(
            class_name, attribute, self._extents[class_name].values(), kind
        )

    # --- centralized export (step CA_C1) -------------------------------------

    def scan_for_export(
        self, class_name: str, attributes: Tuple[str, ...]
    ) -> List[LocalObject]:
        """Return the whole extent projected on *attributes* (plus LOid).

        Attributes the class does not define are simply absent from the
        projection (they will integrate as missing data).
        """
        local_attrs = tuple(
            a
            for a in attributes
            if self.schema.cls(class_name).has_attribute(a)
        )
        return [
            obj.project(local_attrs) for obj in self.extent(class_name).values()
        ]

    # --- local query execution (steps BL_C1 / PL_C2) -------------------------

    def execute_local(
        self, query: LocalQuery, *, columnar: bool = True
    ) -> LocalResultSet:
        """Evaluate *query* against the local root class extent.

        Objects whose local predicates are FALSE are eliminated.  For the
        survivors the row records certain/maybe status, bindings for the
        target paths, the unsolved predicates sitting on the root object,
        and the unsolved items (branch objects with missing data) together
        with their relative unsolved predicates.

        With ``columnar`` (the default) evaluation runs over the cached
        :class:`~repro.objectdb.columnar.ColumnarExtent` batch kernels —
        byte-identical rows and meter totals; the row path runs instead
        whenever the columnar attempt would hit an evaluation error or an
        uncacheable operand (see docs/PERFORMANCE.md).
        """
        if query.db_name != self.name:
            raise ObjectStoreError(
                f"query for db {query.db_name!r} executed at {self.name!r}"
            )
        if columnar:
            result = self._execute_local_columnar(query)
            if result is not None:
                return result
        result = LocalResultSet(db_name=self.name, range_class=query.range_class)
        meter = EvalMeter()
        candidates, probe = self._select_candidates(query)
        result.index_probe = probe
        if probe is not None:
            meter.comparisons += probe.comparisons
        for obj in candidates:
            result.objects_scanned += 1
            row = self._evaluate_root_object(obj, query, meter)
            if row is not None:
                result.rows.append(row)
        result.comparisons = meter.comparisons
        result.derefs = meter.derefs
        return result

    def _execute_local_columnar(
        self, query: LocalQuery
    ) -> Optional[LocalResultSet]:
        """One-pass columnar evaluation; ``None`` means "use the row path".

        The transparency contract: rows, bookkeeping, and meter totals
        are byte-identical to the row path.  The columnar attempt is
        abandoned (returning ``None``, with no observable side effects)
        whenever a *candidate* row carries an error marker — the row path
        then raises the canonical exception in canonical order — or when
        an operand is unhashable, which defeats column caching.
        """
        col = self.columnar_extent(query.range_class)
        summary = col.dnf_summary(query.where)
        if summary is None:
            return None
        candidates, probe = self._select_candidates(query)
        if probe is None:
            cand_objs: List[LocalObject] = col.objects
            rows: Iterable[int] = range(len(cand_objs))
            if summary.error_rows:
                return None
        else:
            cand_objs = list(candidates)
            row_of = col.row_of
            rows = [row_of[obj.loid] for obj in cand_objs]
            err = summary.error_rows
            if err and any(r in err for r in rows):
                return None
        target_walks = [col.walk(target) for target in query.targets]
        for walk in target_walks:
            if walk.errors and (
                probe is None or any(r in walk.errors for r in rows)
            ):
                return None
        # First-occurrence predicate order across conjuncts — the order
        # the row path populates each row's status dict in.
        ordered_preds = []
        seen = set()
        for conjunct in query.where:
            for predicate in conjunct:
                if predicate not in seen:
                    seen.add(predicate)
                    pcol = col.predicate_column(predicate)
                    if pcol is None:
                        return None
                    ordered_preds.append(
                        (predicate, pcol, col.unsolved_column(predicate))
                    )
        removed_cols = [
            (rem, col.unsolved_column(rem.predicate, rem.missing_depth))
            for rem in query.removed
        ]
        result = LocalResultSet(
            db_name=self.name, range_class=query.range_class
        )
        result.index_probe = probe
        meter = EvalMeter()
        if probe is not None:
            meter.comparisons += probe.comparisons
        codes = summary.codes
        row_comp = summary.comparisons
        row_deref = summary.derefs
        targets = query.targets
        rows_out = result.rows
        comp_acc = 0
        deref_acc = 0
        scanned = 0
        # Per-row bookkeeping (status, kind, unsolved tuples, holder-walk
        # deref charge) is deterministic for one query shape on one
        # extent version: memoize it so a repeated query only re-reads.
        memo = col.row_bookkeeping(
            (query.where, query.removed, query.removed_by_conjunct)
        )
        for r, obj in zip(rows, cand_objs):
            scanned += 1
            comp_acc += row_comp[r]
            deref_acc += row_deref[r]
            if codes[r] == FALSE_CODE:
                continue
            cached = None if memo is None else memo.get(r)
            if cached is None:
                status: Dict[Predicate, TV] = {}
                root_unsolved: List[UnsolvedPredicateOnObject] = []
                items: Dict[LOid, UnsolvedItem] = {}
                unsolved_derefs = 0
                for predicate, pcol, ucol in ordered_preds:
                    code = pcol.codes[r]
                    status[predicate] = TV_OF_CODE[code]
                    if code == UNKNOWN_CODE:
                        entry = ucol[r]
                        if entry is not None:
                            unsolved_derefs += entry.derefs
                            self._apply_unsolved(entry, root_unsolved, items)
                for rem, rcol in removed_cols:
                    if rem.predicate not in status:
                        status[rem.predicate] = TV.UNKNOWN
                    entry = rcol[r]
                    unsolved_derefs += entry.derefs
                    self._apply_unsolved(entry, root_unsolved, items)
                maybe = not self._locally_certain(query, status)
                cached = (
                    RowKind.MAYBE if maybe else RowKind.CERTAIN,
                    status,
                    tuple(root_unsolved) if maybe else (),
                    tuple(items.values()) if maybe else (),
                    unsolved_derefs,
                )
                if memo is not None:
                    memo[r] = cached
            kind, status, unsolved_t, items_t, unsolved_derefs = cached
            deref_acc += unsolved_derefs
            bindings: Dict[Path, Value] = {}
            for target, walk in zip(targets, target_walks):
                deref_acc += walk.derefs[r]
                bindings[target] = (
                    NULL if walk.miss[r] is not None else walk.values[r]
                )
            rows_out.append(
                LocalResultRow(
                    loid=obj.loid,
                    class_name=obj.class_name,
                    kind=kind,
                    bindings=bindings,
                    unsolved=unsolved_t,
                    unsolved_items=items_t,
                    predicate_status=status,
                )
            )
        result.objects_scanned = scanned
        result.comparisons = meter.comparisons + comp_acc
        result.derefs = meter.derefs + deref_acc
        return result

    def _select_candidates(
        self, query: LocalQuery
    ) -> Tuple[Iterable[LocalObject], Optional[IndexProbe]]:
        """Pick the scan source: a secondary index probe or the extent.

        An index is usable for a *conjunctive* local query with a
        single-step predicate on an indexed root attribute.  The probe's
        null bucket keeps objects with missing data in the candidate set,
        so indexed evaluation is answer-identical to a full scan.
        """
        extent = self.extent(query.range_class)
        if len(self._indexable_conjuncts(query)) != 1:
            return extent.values(), None
        for predicate in self._indexable_conjuncts(query)[0]:
            if len(predicate.path.steps) != 1:
                continue
            index = self.indexes.best_for(
                query.range_class, predicate.path.first, predicate.op
            )
            if index is None:
                continue
            matches, nulls = index.probe(predicate.op, predicate.operand)
            seen = set()
            candidates: List[LocalObject] = []
            for loid in matches + nulls:
                if loid not in seen:
                    seen.add(loid)
                    obj = extent.get(loid)
                    if obj is not None:
                        candidates.append(obj)
            comparisons = (
                1
                if index.kind == "hash"
                else max(1, int(math.log2(max(index.entries, 2))))
            )
            return candidates, IndexProbe(
                index_kind=index.kind,
                attribute=predicate.path.first,
                candidates=len(candidates),
                comparisons=comparisons,
            )
        return extent.values(), None

    @staticmethod
    def _indexable_conjuncts(query: LocalQuery):
        """Index probes are only sound for single-conjunct queries: a
        candidate restriction by one disjunct's predicate would drop
        objects satisfying another disjunct."""
        return query.where if len(query.where) == 1 else ()

    def _evaluate_root_object(
        self, obj: LocalObject, query: LocalQuery, meter: EvalMeter
    ) -> Optional[LocalResultRow]:
        outcome = evaluate_dnf(obj, query.where, self.deref, meter)
        if outcome.tv is TV.FALSE:
            return None

        root_unsolved: List[UnsolvedPredicateOnObject] = []
        items: Dict[LOid, UnsolvedItem] = {}
        status: Dict[Predicate, TV] = {}

        # Per-predicate statuses from every conjunct; unsolved predicates
        # discovered dynamically (null values) are located on their holder.
        for conj_outcome in outcome.conjunctions:
            for pred_outcome in conj_outcome.outcomes:
                if pred_outcome.predicate in status:
                    continue
                status[pred_outcome.predicate] = pred_outcome.tv
                missing = pred_outcome.missing
                if pred_outcome.tv is TV.UNKNOWN and missing is not None:
                    self._record_unsolved(
                        obj,
                        pred_outcome.predicate,
                        missing.depth,
                        root_unsolved,
                        items,
                        meter,
                    )

        # Predicates removed because of missing attributes of local classes:
        # statically unsolved for every object at this site.
        for removed in query.removed:
            if removed.predicate not in status:
                status[removed.predicate] = TV.UNKNOWN
            self._record_unsolved(
                obj,
                removed.predicate,
                removed.missing_depth,
                root_unsolved,
                items,
                meter,
            )

        kind = (
            RowKind.CERTAIN
            if self._locally_certain(query, status)
            else RowKind.MAYBE
        )
        bindings = self._bind_targets(obj, query.targets, meter)
        return LocalResultRow(
            loid=obj.loid,
            class_name=obj.class_name,
            kind=kind,
            bindings=bindings,
            unsolved=tuple(root_unsolved) if kind is RowKind.MAYBE else (),
            unsolved_items=tuple(items.values()) if kind is RowKind.MAYBE else (),
            predicate_status=status,
        )

    @staticmethod
    def _locally_certain(query: LocalQuery, status: Dict[Predicate, TV]) -> bool:
        """True when some conjunct is fully TRUE and lost no predicate.

        For the paper's conjunctive queries this reduces to: all predicates
        TRUE and none removed.  An object that is locally certain needs no
        certification — its unsolved bookkeeping is discarded.
        """
        if not query.where:
            return not query.removed
        removed_by_conjunct = query.removed_by_conjunct or tuple(
            () for _ in query.where
        )
        for conjunct, removed in zip(query.where, removed_by_conjunct):
            if removed:
                continue
            if all(status.get(p) is TV.TRUE for p in conjunct):
                return True
        return False

    def _record_unsolved(
        self,
        root: LocalObject,
        predicate: Predicate,
        missing_depth: int,
        root_unsolved: List[UnsolvedPredicateOnObject],
        items: Dict[LOid, UnsolvedItem],
        meter: EvalMeter,
    ) -> None:
        """Attach *predicate* as unsolved on the object holding the data.

        Walks the path prefix up to *missing_depth* to locate the holder;
        the walk may be blocked even earlier by a null reference, in which
        case the blocking object is the holder.
        """
        holder, depth = self._holder_at_depth(
            root, predicate.path, missing_depth, meter
        )
        relative = UnsolvedPredicateOnObject(
            original=predicate,
            relative_path=Path(predicate.path.steps[depth:]),
        )
        if holder.loid == root.loid:
            if relative not in root_unsolved:
                root_unsolved.append(relative)
            return
        item = items.get(holder.loid)
        if item is None:
            items[holder.loid] = UnsolvedItem(
                loid=holder.loid,
                class_name=holder.class_name,
                reached_via=Path(predicate.path.steps[:depth]),
                unsolved=(relative,),
            )
        elif relative not in item.unsolved:
            items[holder.loid] = UnsolvedItem(
                loid=item.loid,
                class_name=item.class_name,
                reached_via=item.reached_via,
                unsolved=item.unsolved + (relative,),
            )

    @staticmethod
    def _apply_unsolved(
        entry: "UnsolvedEntry",
        root_unsolved: List[UnsolvedPredicateOnObject],
        items: Dict[LOid, UnsolvedItem],
    ) -> None:
        """:meth:`_record_unsolved` from a precomputed columnar entry.

        Same bookkeeping, but the holder walk and the relative-predicate
        construction were done once per extent version by
        :meth:`~repro.objectdb.columnar.ColumnarExtent.unsolved_column`.
        """
        relative = entry.relative
        if entry.is_root:
            if relative not in root_unsolved:
                root_unsolved.append(relative)
            return
        item = items.get(entry.holder_loid)
        if item is None:
            items[entry.holder_loid] = UnsolvedItem(
                loid=entry.holder_loid,
                class_name=entry.holder_class,
                reached_via=entry.reached_via,
                unsolved=(relative,),
            )
        elif relative not in item.unsolved:
            items[entry.holder_loid] = UnsolvedItem(
                loid=item.loid,
                class_name=item.class_name,
                reached_via=item.reached_via,
                unsolved=item.unsolved + (relative,),
            )

    def _holder_at_depth(
        self, root: LocalObject, path: Path, depth: int, meter: EvalMeter
    ) -> Tuple[LocalObject, int]:
        """Object on which path step *depth* would be read (or the blocker)."""
        current = root
        for index in range(depth):
            value = current.get(path.steps[index])
            if is_null(value):
                return current, index
            if not isinstance(value, LOid):
                return current, index
            meter.derefs += 1
            nxt = self.deref(value)
            if nxt is None:
                return current, index
            current = nxt
        return current, depth

    def _bind_targets(
        self, obj: LocalObject, targets: Tuple[Path, ...], meter: EvalMeter
    ) -> Dict[Path, Value]:
        bindings: Dict[Path, Value] = {}
        for target in targets:
            walk = walk_path(obj, target, self.deref, meter)
            bindings[target] = NULL if walk.is_missing else walk.value
        return bindings

    # --- phase-O-first scan (step PL_C1) --------------------------------------

    def collect_unsolved(
        self, query: LocalQuery, *, columnar: bool = True
    ) -> Tuple["UnsolvedScan", EvalMeter]:
        """Locate unsolved predicates/items for *every* root object.

        This is PL's phase O performed *before* predicate evaluation
        (step PL_C1): no predicate operand is compared; the scan only
        probes for missing data along each predicate's path, so unsolved
        items of objects that would later fail the local predicates are
        found (and their assistants dispatched) too — PL's characteristic
        overhead.

        One comparison per (object, predicate) probe is charged to the
        meter for the missing-data test; path walks charge derefs.  With
        ``columnar`` the probe reads cached walk columns (byte-identical
        scan and meter totals; the row path runs when a walk would raise).
        """
        if query.db_name != self.name:
            raise ObjectStoreError(
                f"query for db {query.db_name!r} executed at {self.name!r}"
            )
        if columnar:
            out = self._collect_unsolved_columnar(query)
            if out is not None:
                return out
        meter = EvalMeter()
        scan = UnsolvedScan(db_name=self.name, range_class=query.range_class)
        local_predicates = query.local_predicates
        for obj in self.extent(query.range_class).values():
            scan.objects_scanned += 1
            root_unsolved: List[UnsolvedPredicateOnObject] = []
            items: Dict[LOid, UnsolvedItem] = {}
            for predicate in local_predicates:
                meter.comparisons += 1  # missing-data probe
                walk = walk_path(obj, predicate.path, self.deref, meter)
                if walk.is_missing and walk.missing is not None:
                    self._record_unsolved(
                        obj,
                        predicate,
                        walk.missing.depth,
                        root_unsolved,
                        items,
                        meter,
                    )
            for removed in query.removed:
                meter.comparisons += 1  # missing-data probe
                self._record_unsolved(
                    obj,
                    removed.predicate,
                    removed.missing_depth,
                    root_unsolved,
                    items,
                    meter,
                )
            if root_unsolved or items:
                scan.per_root[obj.loid] = (
                    tuple(root_unsolved),
                    tuple(items.values()),
                )
        return scan, meter

    def _collect_unsolved_columnar(
        self, query: LocalQuery
    ) -> Optional[Tuple["UnsolvedScan", EvalMeter]]:
        """Columnar PL_C1 probe; ``None`` means "use the row path".

        The missing-data probes read cached walk columns; only objects
        with actual misses (or statically removed predicates) take the
        per-object bookkeeping path.  Comparison charges aggregate to
        exactly ``objects x probes``, matching the row path's per-probe
        metering.
        """
        local_predicates = query.local_predicates
        col = self.columnar_extent(query.range_class)
        walks = []
        for predicate in local_predicates:
            walk = col.walk(predicate.path)
            if walk.errors:
                # The row path scans every object, so it raises here.
                return None
            walks.append(walk)
        n = len(col.objects)
        meter = EvalMeter()
        scan = UnsolvedScan(db_name=self.name, range_class=query.range_class)
        scan.objects_scanned = n
        meter.comparisons = n * (len(local_predicates) + len(query.removed))
        miss_rows: set = set()
        deref_acc = 0
        for walk in walks:
            deref_acc += sum(walk.derefs)
            miss = walk.miss
            miss_rows.update(
                r for r in range(n) if miss[r] is not None
            )
        meter.derefs = deref_acc
        objects = col.objects
        rows = range(n) if query.removed else sorted(miss_rows)
        ucols = [
            col.unsolved_column(predicate) for predicate in local_predicates
        ]
        removed_cols = [
            (rem, col.unsolved_column(rem.predicate, rem.missing_depth))
            for rem in query.removed
        ]
        for r in rows:
            obj = objects[r]
            root_unsolved: List[UnsolvedPredicateOnObject] = []
            items: Dict[LOid, UnsolvedItem] = {}
            for ucol in ucols:
                entry = ucol[r]
                if entry is not None:
                    meter.derefs += entry.derefs
                    self._apply_unsolved(entry, root_unsolved, items)
            for _rem, rcol in removed_cols:
                entry = rcol[r]
                meter.derefs += entry.derefs
                self._apply_unsolved(entry, root_unsolved, items)
            if root_unsolved or items:
                scan.per_root[obj.loid] = (
                    tuple(root_unsolved),
                    tuple(items.values()),
                )
        return scan, meter

    # --- assistant checking (steps BL_C3 / PL_C3) -----------------------------

    def check_assistants(
        self, request: CheckRequest, *, columnar: bool = True
    ) -> CheckReport:
        """Evaluate the appended unsolved predicates on listed objects.

        With ``columnar`` verdicts come from cached predicate columns
        (byte-identical reports and meter totals; the row path runs when
        a checked row would raise or an operand defeats caching).
        """
        if request.db_name != self.name:
            raise ObjectStoreError(
                f"check request for db {request.db_name!r} executed at "
                f"{self.name!r}"
            )
        if columnar:
            report = self._check_assistants_columnar(request)
            if report is not None:
                return report
        report = CheckReport(db_name=self.name, class_name=request.class_name)
        meter = EvalMeter()
        satisfied: Dict[Predicate, List[LOid]] = {p: [] for p in request.predicates}
        violated: Dict[Predicate, List[LOid]] = {p: [] for p in request.predicates}
        unknown: Dict[Predicate, List[LOid]] = {p: [] for p in request.predicates}
        blocked: List[BlockedAt] = []
        for loid in request.loids:
            obj = self.get(loid)
            report.objects_checked += 1
            for predicate in request.predicates:
                if obj is None:
                    unknown[predicate].append(loid)
                    continue
                outcome = evaluate_predicate(obj, predicate, self.deref, meter)
                if outcome.tv is TV.TRUE:
                    satisfied[predicate].append(loid)
                elif outcome.tv is TV.FALSE:
                    violated[predicate].append(loid)
                else:
                    unknown[predicate].append(loid)
                    missing = outcome.missing
                    if missing is not None and missing.holder_id != loid:
                        # Stuck at a *different* object: report it so the
                        # global site can chase its isomeric copies.
                        blocked.append(
                            BlockedAt(
                                checked=loid,
                                predicate=predicate,
                                holder=missing.holder_id,  # type: ignore[arg-type]
                                holder_class=missing.holder_class,
                                remaining=Predicate(
                                    path=Path(
                                        predicate.path.steps[missing.depth:]
                                    ),
                                    op=predicate.op,
                                    operand=predicate.operand,
                                ),
                            )
                        )
        report.satisfied = {p: tuple(v) for p, v in satisfied.items()}
        report.violated = {p: tuple(v) for p, v in violated.items()}
        report.unknown = {p: tuple(v) for p, v in unknown.items()}
        report.blocked = tuple(blocked)
        report.comparisons = meter.comparisons
        report.derefs = meter.derefs
        return report

    def _check_assistants_columnar(
        self, request: CheckRequest
    ) -> Optional[CheckReport]:
        """Columnar assistant check; ``None`` means "use the row path".

        Verdicts for listed objects come straight from the class's cached
        predicate columns.  LOids outside the request class's extent fall
        back to per-object row evaluation inline (preserving the row
        path's loid-major report order); a checked row with an error
        marker abandons the whole attempt so the row path raises
        canonically.
        """
        try:
            col = self.columnar_extent(request.class_name)
        except UnknownClassError:
            # The row path resolves LOids via get() and never needs the
            # class extent; stay on it for classes this site lacks.
            return None
        pcols = []
        for predicate in request.predicates:
            pcol = col.predicate_column(predicate)
            if pcol is None:
                return None
            pcols.append(pcol)
        row_of = col.row_of
        for loid in request.loids:
            r = row_of.get(loid)
            if r is not None and any(r in pcol.error_rows for pcol in pcols):
                return None
        report = CheckReport(db_name=self.name, class_name=request.class_name)
        meter = EvalMeter()
        satisfied: Dict[Predicate, List[LOid]] = {
            p: [] for p in request.predicates
        }
        violated: Dict[Predicate, List[LOid]] = {
            p: [] for p in request.predicates
        }
        unknown: Dict[Predicate, List[LOid]] = {
            p: [] for p in request.predicates
        }
        blocked: List[BlockedAt] = []
        comp_acc = 0
        deref_acc = 0
        predicates = request.predicates
        for loid in request.loids:
            report.objects_checked += 1
            r = row_of.get(loid)
            if r is None:
                # Not in this class's extent: replicate the row path's
                # get()-based check for this loid (it may live in another
                # extent, or be absent entirely).
                obj = self.get(loid)
                for predicate in predicates:
                    if obj is None:
                        unknown[predicate].append(loid)
                        continue
                    outcome = evaluate_predicate(
                        obj, predicate, self.deref, meter
                    )
                    if outcome.tv is TV.TRUE:
                        satisfied[predicate].append(loid)
                    elif outcome.tv is TV.FALSE:
                        violated[predicate].append(loid)
                    else:
                        unknown[predicate].append(loid)
                        missing = outcome.missing
                        if missing is not None and missing.holder_id != loid:
                            blocked.append(
                                BlockedAt(
                                    checked=loid,
                                    predicate=predicate,
                                    holder=missing.holder_id,  # type: ignore[arg-type]
                                    holder_class=missing.holder_class,
                                    remaining=Predicate(
                                        path=Path(
                                            predicate.path.steps[
                                                missing.depth:
                                            ]
                                        ),
                                        op=predicate.op,
                                        operand=predicate.operand,
                                    ),
                                )
                            )
                continue
            for predicate, pcol in zip(predicates, pcols):
                code = pcol.codes[r]
                comp_acc += pcol.comparisons[r]
                deref_acc += pcol.derefs[r]
                if code == FALSE_CODE:
                    violated[predicate].append(loid)
                elif code == UNKNOWN_CODE:
                    unknown[predicate].append(loid)
                    miss = pcol.miss[r]
                    if miss is not None and miss[1] != loid:
                        blocked.append(
                            BlockedAt(
                                checked=loid,
                                predicate=predicate,
                                holder=miss[1],
                                holder_class=miss[2],
                                remaining=Predicate(
                                    path=Path(
                                        predicate.path.steps[miss[0]:]
                                    ),
                                    op=predicate.op,
                                    operand=predicate.operand,
                                ),
                            )
                        )
                else:
                    satisfied[predicate].append(loid)
        report.satisfied = {p: tuple(v) for p, v in satisfied.items()}
        report.violated = {p: tuple(v) for p, v in violated.items()}
        report.unknown = {p: tuple(v) for p, v in unknown.items()}
        report.blocked = tuple(blocked)
        report.comparisons = meter.comparisons + comp_acc
        report.derefs = meter.derefs + deref_acc
        return report

    # --- batch predicate kernel (public, id-set form) --------------------------

    def batch_evaluate_predicate(
        self, class_name: str, predicate: Predicate, *, columnar: bool = True
    ) -> BatchPredicateSets:
        """Evaluate one predicate over a whole extent in one pass.

        Returns true/maybe/false LOid-sets (extent order) instead of
        per-object ``TV`` values — the kernel form the paper's phase-L
        check reduces to.  With ``columnar`` off, or when a row's
        evaluation would raise, objects are evaluated in extent order via
        :func:`~repro.core.predicates.evaluate_predicate` so exceptions
        surface canonically.
        """
        if columnar:
            col = self.columnar_extent(class_name)
            pcol = col.predicate_column(predicate)
            if pcol is not None and not pcol.error_rows:
                true, maybe, false = partition_codes(
                    tuple(col.loids), pcol.codes
                )
                return BatchPredicateSets(
                    predicate=predicate, true=true, maybe=maybe, false=false
                )
        true_l: List[LOid] = []
        maybe_l: List[LOid] = []
        false_l: List[LOid] = []
        for obj in self.extent(class_name).values():
            outcome = evaluate_predicate(obj, predicate, self.deref)
            if outcome.tv is TV.TRUE:
                true_l.append(obj.loid)
            elif outcome.tv is TV.FALSE:
                false_l.append(obj.loid)
            else:
                maybe_l.append(obj.loid)
        return BatchPredicateSets(
            predicate=predicate,
            true=tuple(true_l),
            maybe=tuple(maybe_l),
            false=tuple(false_l),
        )
