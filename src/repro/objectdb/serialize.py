"""JSON serialization of federations (schemas, objects, catalogs).

Lets a federation be saved to a portable JSON document and rebuilt
exactly — useful for fixtures, for inspecting generated workloads, and
for shipping reproducers of interesting cases.  Round-trip fidelity is
property-tested.

Value encoding: primitives pass through; the non-JSON value kinds are
tagged one-key objects::

    NULL               {"$null": true}
    LOid               {"$loid": ["DB1", "s1"]}
    GOid               {"$goid": "gs1"}
    MultiValue         {"$multi": [<value>, ...]}
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping

from repro.errors import ObjectStoreError
from repro.integration.global_schema import ClassCorrespondence
from repro.integration.isomerism import table_from_correspondences
from repro.integration.mapping import MappingCatalog
from repro.objectdb.database import ComponentDatabase
from repro.objectdb.ids import GOid, LOid
from repro.objectdb.objects import LocalObject
from repro.objectdb.schema import (
    AttrKind,
    AttributeDef,
    ClassDef,
    ComponentSchema,
)
from repro.objectdb.values import MultiValue, NULL, Value

FORMAT_VERSION = 1


# --- values -------------------------------------------------------------------


def encode_value(value: Value) -> Any:
    if value is NULL:
        return {"$null": True}
    if isinstance(value, LOid):
        return {"$loid": [value.db, value.value]}
    if isinstance(value, GOid):
        return {"$goid": value.value}
    if isinstance(value, MultiValue):
        return {"$multi": sorted((encode_value(v) for v in value), key=repr)}
    if isinstance(value, (int, float, str, bool)):
        return value
    raise ObjectStoreError(f"cannot serialize value {value!r}")


def decode_value(raw: Any) -> Value:
    if isinstance(raw, dict):
        if raw.get("$null"):
            return NULL
        if "$loid" in raw:
            db, local = raw["$loid"]
            return LOid(db, local)
        if "$goid" in raw:
            return GOid(raw["$goid"])
        if "$multi" in raw:
            return MultiValue(decode_value(v) for v in raw["$multi"])
        raise ObjectStoreError(f"unknown value tag in {raw!r}")
    if isinstance(raw, (int, float, str, bool)):
        return raw
    raise ObjectStoreError(f"cannot deserialize value {raw!r}")


# --- schemas -----------------------------------------------------------------


def encode_attribute(attr: AttributeDef) -> Dict[str, Any]:
    data: Dict[str, Any] = {"name": attr.name, "kind": attr.kind.value}
    if attr.domain is not None:
        data["domain"] = attr.domain
    if attr.multi_valued:
        data["multi_valued"] = True
    return data


def decode_attribute(raw: Mapping[str, Any]) -> AttributeDef:
    return AttributeDef(
        name=raw["name"],
        kind=AttrKind(raw["kind"]),
        domain=raw.get("domain"),
        multi_valued=bool(raw.get("multi_valued", False)),
    )


def encode_schema(schema: ComponentSchema) -> Dict[str, Any]:
    return {
        "db_name": schema.db_name,
        "classes": [
            {
                "name": cdef.name,
                "attributes": [encode_attribute(a) for a in cdef.attributes],
            }
            for cdef in schema.schema
        ],
    }


def decode_schema(raw: Mapping[str, Any]) -> ComponentSchema:
    return ComponentSchema.of(
        raw["db_name"],
        [
            ClassDef.of(
                cls["name"],
                [decode_attribute(a) for a in cls["attributes"]],
            )
            for cls in raw["classes"]
        ],
    )


# --- databases ----------------------------------------------------------------


def encode_database(db: ComponentDatabase) -> Dict[str, Any]:
    objects: List[Dict[str, Any]] = []
    for class_name in db.schema.class_names:
        for obj in db.extent(class_name).values():
            objects.append(
                {
                    "loid": obj.loid.value,
                    "class": obj.class_name,
                    "values": {
                        name: encode_value(value)
                        for name, value in obj.values.items()
                    },
                }
            )
    return {"schema": encode_schema(db.schema), "objects": objects}


def decode_database(raw: Mapping[str, Any]) -> ComponentDatabase:
    db = ComponentDatabase(decode_schema(raw["schema"]))
    for entry in raw["objects"]:
        db.insert(
            LocalObject(
                loid=LOid(db.name, entry["loid"]),
                class_name=entry["class"],
                values={
                    name: decode_value(value)
                    for name, value in entry["values"].items()
                },
            ),
            validate=False,
        )
    return db


# --- catalogs / correspondences -------------------------------------------------


def encode_catalog(catalog: MappingCatalog) -> Dict[str, Any]:
    return {
        table.global_class: [
            [goid.value, [[l.db, l.value] for l in row.values()]]
            for goid, row in table.entries()
        ]
        for table in catalog.tables()
    }


def decode_catalog(raw: Mapping[str, Any]) -> MappingCatalog:
    catalog = MappingCatalog()
    for global_class, entries in raw.items():
        catalog.register(
            table_from_correspondences(
                global_class,
                [
                    (GOid(goid), [LOid(db, local) for db, local in loids])
                    for goid, loids in entries
                ],
            )
        )
    return catalog


def encode_correspondence(corr: ClassCorrespondence) -> Dict[str, Any]:
    return {
        "global_name": corr.global_name,
        "constituents": [[r.db_name, r.class_name] for r in corr.constituents],
        "key_attribute": corr.key_attribute,
        "multi_valued_attributes": sorted(corr.multi_valued_attributes),
    }


def decode_correspondence(raw: Mapping[str, Any]) -> ClassCorrespondence:
    return ClassCorrespondence.of(
        raw["global_name"],
        [tuple(pair) for pair in raw["constituents"]],
        raw["key_attribute"],
        raw.get("multi_valued_attributes", ()),
    )


# --- whole federations -----------------------------------------------------------


def federation_to_dict(system) -> Dict[str, Any]:
    """Serialize a :class:`~repro.core.system.DistributedSystem`."""
    return {
        "format": FORMAT_VERSION,
        "databases": [
            encode_database(db) for db in system.databases.values()
        ],
        "correspondences": [
            encode_correspondence(
                system.global_schema.correspondence(name)
            )
            for name in system.global_schema.class_names
        ],
        "catalog": encode_catalog(system.catalog),
    }


def federation_from_dict(raw: Mapping[str, Any]):
    """Rebuild a federation saved by :func:`federation_to_dict`."""
    from repro.core.system import DistributedSystem

    version = raw.get("format")
    if version != FORMAT_VERSION:
        raise ObjectStoreError(
            f"unsupported federation format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    databases = [decode_database(entry) for entry in raw["databases"]]
    correspondences = [
        decode_correspondence(entry) for entry in raw["correspondences"]
    ]
    catalog = decode_catalog(raw["catalog"])
    return DistributedSystem.build(
        databases, correspondences, catalog=catalog
    )


def save_federation(system, path: str) -> None:
    """Write a federation to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(federation_to_dict(system), handle, indent=1, sort_keys=True)


def load_federation(path: str):
    """Read a federation from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return federation_from_dict(json.load(handle))
