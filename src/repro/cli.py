"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``       — run the paper's Q1 on the school federation (all
  strategies) and print answers + simulated costs;
* ``query``      — run an arbitrary SQL/X query against the school
  federation with a chosen strategy (optionally exporting the trace);
* ``explain``    — run a query once and print its full execution report
  (answer, phase times, utilization, Gantt timeline);
* ``strategies`` — list the registered strategies and their metadata;
* ``study``      — regenerate the paper's performance study
  (Figures 9-11) as tables;
* ``compare``    — generate a synthetic Table 2 federation and compare
  all five strategies on it (optionally exporting every trace);
* ``tables``     — print Tables 1 and 2;
* ``fuzz``       — run the differential correctness harness (seeded
  federation fuzzer + cross-strategy oracle), or replay committed
  case files with ``--replay``;
* ``traffic``    — drive a deterministic concurrent workload (N
  workers, weighted query mix, admission control) against a synthetic
  federation and report throughput + latency percentiles; ``--evolve``
  runs membership/schema churn on the same simulated clock;
* ``evolve``     — step an evolution plan through a synthetic
  federation transition by transition, re-executing the workload query
  at every epoch to show the consistency contract in action;
* ``recertify``  — run a query degraded under a fault plan, print the
  discharge conditions its maybe rows carry, then repair the answer
  incrementally against the healed federation (no re-execution).

Every query-running command executes through an
:class:`~repro.core.session.EngineSession` configured with one
:class:`~repro.core.options.ExecutionOptions` value built from the
fault/batching flags.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import List, Optional

import dataclasses

from repro.bench.experiments import figure9, figure10, figure11
from repro.bench.reporting import dump_traces, format_table, series_table
from repro.core.engine import GlobalQueryEngine
from repro.core.options import PLANNER_MODES, ExecutionOptions
from repro.core.strategies import DEFAULT_REGISTRY
from repro.errors import EvolutionError, FaultPlanError
from repro.faults import POLICIES, FaultPlan, resolve_policy
from repro.sim.costs import table1_rows
from repro.workload.generator import generate
from repro.workload.paper_example import Q1_TEXT, build_school_federation
from repro.workload.params import sample_params, table2_rows

#: Names accepted by --strategy (everything in the registry).
QUERY_STRATEGIES = tuple(DEFAULT_REGISTRY.names())
#: The concrete strategies (the adaptive selector delegates to these).
STRATEGY_CHOICES = tuple(n for n in QUERY_STRATEGIES if n != "AUTO")


def _cmd_demo(_args: argparse.Namespace) -> int:
    engine = GlobalQueryEngine(build_school_federation())
    print(f"Q1: {Q1_TEXT}\n")
    for name in ("CA", "BL", "PL"):
        outcome = engine.execute(Q1_TEXT, name)
        print(
            f"{name}: certain={outcome.results.certain_rows()} "
            f"maybe={outcome.results.maybe_rows()} "
            f"total={outcome.total_time * 1000:.2f}ms "
            f"response={outcome.response_time * 1000:.2f}ms"
        )
    return 0


def _load_fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """Build the plan from --faults: a JSON file path or an inline spec
    (``"DB2@0:1.5,link:*>DB1:loss0.3"``)."""
    raw = getattr(args, "faults", "")
    if not raw:
        return None
    seed = getattr(args, "fault_seed", 0)
    if os.path.exists(raw):
        with open(raw) as handle:
            plan = FaultPlan.from_json(handle.read())
        # The CLI seed wins over the file's when given explicitly.
        if seed:
            plan = FaultPlan(
                seed=seed, outages=plan.outages, links=plan.links
            )
        return plan
    return FaultPlan.from_spec(raw, seed=seed)


def _add_fault_args(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--faults", default="",
        help="fault plan: a JSON file path or an inline spec like "
             "'DB2@0:1.5,link:*>DB1:loss0.3'",
    )
    command.add_argument(
        "--fault-seed", type=int, default=0, dest="fault_seed",
        help="seed for loss draws and backoff jitter",
    )
    command.add_argument(
        "--policy", default="degrade", metavar="SPEC",
        help="fault-handling policy: a preset "
             f"({', '.join(sorted(POLICIES))}) optionally followed by "
             "inline overrides, e.g. 'degrade:timeout=0.5,retries=3,"
             "hedge=0.1' (default: degrade to partial answers)",
    )
    command.add_argument(
        "--failover", action=argparse.BooleanOptionalAction, default=True,
        help="reroute checks over the global-site relay and demote rows "
             "only when no isomeric copy answered (--no-failover "
             "restores eager skip-and-demote)",
    )
    command.add_argument(
        "--hedge", type=float, default=None, metavar="SECONDS",
        help="hedged dispatch: duplicate a check over the relay when "
             "the direct link is slower than this seeded delay",
    )


def _resolve_cli_policy(args: argparse.Namespace):
    """The execution policy from --policy (+ --hedge shorthand)."""
    policy = resolve_policy(args.policy)
    hedge = getattr(args, "hedge", None)
    if hedge is not None:
        policy = dataclasses.replace(
            policy,
            name=f"{policy.name}+hedge",
            hedge_delay_s=hedge,
        )
    return policy


def _add_batch_arg(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--no-batch", action="store_true", dest="no_batch",
        help="disable per-link batching of phase-O check messages "
             "(one request/reply pair per check request)",
    )


def _add_columnar_arg(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--no-columnar", action="store_true", dest="no_columnar",
        help="evaluate local queries, assistant checks and the outerjoin "
             "merge on the per-object row path instead of the columnar "
             "extent kernels (answers are identical either way)",
    )


def _add_planner_arg(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--planner", default="static", choices=PLANNER_MODES,
        help="adaptive-planning mode: feedback (AUTO consults observed "
             "stalls/breakers/queue delays), constraints (prune sites "
             "and checks via the per-site constraint catalog), full "
             "(both); answers are identical in every mode",
    )


def _add_conditions_arg(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--no-conditions", action="store_true", dest="no_conditions",
        help="do not attach discharge conditions to degraded rows "
             "(notes-only degradation; such reports cannot be repaired "
             "with 'recertify')",
    )


def _cli_options(args: argparse.Namespace) -> ExecutionOptions:
    """One ExecutionOptions value from the fault/batching flags."""
    return ExecutionOptions(
        fault_plan=_load_fault_plan(args),
        policy=_resolve_cli_policy(args),
        fault_seed=getattr(args, "fault_seed", 0),
        batch_checks=not getattr(args, "no_batch", False),
        failover=getattr(args, "failover", True),
        columnar=not getattr(args, "no_columnar", False),
        planner=getattr(args, "planner", "static"),
        conditions=not getattr(args, "no_conditions", False),
    )


def _cli_session(system, args: argparse.Namespace):
    """The CLI's session over a fresh engine on *system*."""
    return GlobalQueryEngine(system).session(
        name="cli", options=_cli_options(args)
    )


def _cmd_query(args: argparse.Namespace) -> int:
    session = _cli_session(build_school_federation(), args)
    report = session.execute(args.sql, strategy=args.strategy)
    print(f"strategy: {args.strategy}")
    availability = report.availability.summary()
    if availability != "complete":
        print(f"degraded: {availability}")
    print(f"certain:  {report.results.certain_rows()}")
    print(f"maybe:    {report.results.maybe_rows()}")
    for maybe in report.results.maybe:
        unsolved = ", ".join(str(p) for p in maybe.unsolved)
        print(f"  {maybe.goid}: unsolved {unsolved}")
        for note in maybe.notes:
            print(f"  {maybe.goid}: {note}")
    if args.trace:
        with open(args.trace, "w") as handle:
            handle.write(report.trace.to_chrome_json())
        print(f"trace:    {args.trace} (load in chrome://tracing or Perfetto)")
    if args.jsonl:
        with open(args.jsonl, "w") as handle:
            handle.write(report.trace.to_jsonl())
        print(f"jsonl:    {args.jsonl}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    session = _cli_session(build_school_federation(), args)
    report = session.execute(args.sql, strategy=args.strategy)
    print(report.explain(width=args.width))
    if args.trace:
        with open(args.trace, "w") as handle:
            handle.write(report.trace.to_chrome_json())
        print(f"\ntrace written to {args.trace}")
    return 0


def _cmd_strategies(_args: argparse.Namespace) -> int:
    print(DEFAULT_REGISTRY.table())
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    figures = {
        "9": (figure9, "Figure 9 — objects per constituent class"),
        "10": (figure10, "Figure 10 — component databases"),
        "11": (figure11, "Figure 11 — local predicate selectivity"),
    }
    wanted = args.figures.split(",") if args.figures else list(figures)
    for key in wanted:
        if key not in figures:
            print(f"unknown figure {key!r}; choose from 9,10,11",
                  file=sys.stderr)
            return 2
        build, title = figures[key]
        series = build(samples=args.samples)
        print(f"\n{title} (n={args.samples} samples/point)")
        print("(a) total execution time")
        print(series_table(series, "total"))
        print("(b) response time")
        print(series_table(series, "response"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    params = sample_params(rng)
    params.seed = args.seed
    workload = generate(params, scale=args.scale)
    session = _cli_session(workload.system, args)
    print(f"query: {workload.query}")
    outcomes = session.compare(
        workload.query,
        strategies=list(STRATEGY_CHOICES),
    )
    print(f"answer: {outcomes['CA'].results.summary()}\n")
    headers = ["strategy", "total (s)", "response (s)", "net bytes", "checked"]
    with_faults = bool(args.faults)
    if with_faults:
        headers.append("availability")
    rows = []
    for name in STRATEGY_CHOICES:
        row = [
            name,
            f"{outcomes[name].total_time:.3f}",
            f"{outcomes[name].response_time:.3f}",
            str(outcomes[name].metrics.work.bytes_network),
            str(outcomes[name].metrics.work.assistants_checked),
        ]
        if with_faults:
            row.append(outcomes[name].availability.summary())
        rows.append(row)
    print(format_table(headers, rows))
    if args.trace_dir:
        written = dump_traces(outcomes, args.trace_dir)
        print(f"\ntraces written to {args.trace_dir}:")
        for path in written:
            print(f"  {path}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    # Imported lazily: the harness pulls in the whole strategy stack.
    from repro.difftest import replay_cases, run_fuzz
    from repro.difftest.oracle import StrategyOracle

    # --no-columnar anchors every invariant run on the row path (the
    # oracle's columnar invariant still cross-checks the opposite path);
    # --planner pins every invariant run to an adaptive mode (the
    # planner invariant still cross-checks against static).
    planner = getattr(args, "planner", "static")
    if args.no_columnar or planner != "static" or args.recertify:
        oracle = StrategyOracle(
            columnar=False if args.no_columnar else None,
            planner=planner if planner != "static" else None,
            recertify=args.recertify,
        )
    else:
        oracle = None
    if args.replay:
        violations = replay_cases(args.replay, oracle=oracle)
    else:
        violations = run_fuzz(
            args.seed, args.cases, out_dir=args.out or None, oracle=oracle
        )
    return 1 if violations else 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    # Imported lazily: traffic pulls in the difftest oracle.
    from repro.traffic import AdmissionControl, TrafficEngine, default_mix

    def build_workload():
        rng = random.Random(args.seed)
        params = sample_params(rng)
        params.seed = args.seed
        return generate(params, scale=args.scale)

    workload = build_workload()
    mix = default_mix(workload)
    evolution = None
    if args.evolve:
        from repro.evolution import EvolutionPlan, resolve_auto
        from repro.evolution.seeding import mix_referenced_attributes

        plan = EvolutionPlan.from_spec(
            args.evolve, seed=args.seed, propagation_lag_s=args.evolve_lag
        )
        evolution = resolve_auto(
            plan, workload.system, workload.query,
            extra_referenced=mix_referenced_attributes(mix),
        )
    engine = TrafficEngine(
        workload.system,
        mix,
        workers=args.workers,
        queries=args.queries,
        seed=args.seed,
        strategy=args.strategy,
        options=_cli_options(args),
        admission=AdmissionControl(
            max_in_flight=args.max_in_flight,
            queue_depth=args.queue_depth,
        ),
        evolution=evolution,
        system_factory=lambda: build_workload().system,
    )
    report = engine.run(verify=args.verify)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"mix: {report.mix} over {workload.query}")
        if report.evolution:
            print(
                f"evolution: {report.evolution} — "
                f"{report.evo_transitions} transitions, final epoch "
                f"{report.final_epoch}, {report.queries_straddled} "
                f"queries straddled, mean propagation lag "
                f"{report.propagation_lag_mean_s:.3f}s"
            )
        print(report.summary())
        print(
            f"gate: {report.gate_queued} queued "
            f"({report.gate_wait_s:.3f}s waiting), "
            f"{report.gate_rejected} shed"
        )
        print(
            f"caches: {report.cache_hits} hits / "
            f"{report.cache_misses} misses, "
            f"{report.shared_hits} cross-worker"
        )
        if args.verify:
            print(
                f"verified: {report.verified} answers vs serial, "
                f"{len(report.violations)} violations"
            )
        for violation in report.violations:
            print(f"  VIOLATION: {violation}")
    return 1 if report.violations else 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    """Step an evolution plan epoch by epoch, re-querying at each one."""
    from repro.difftest.oracle import answer_digest
    from repro.evolution import (
        EvolutionController,
        EvolutionPlan,
        resolve_auto,
    )

    rng = random.Random(args.seed)
    params = sample_params(rng)
    params.seed = args.seed
    workload = generate(params, scale=args.scale)
    plan = resolve_auto(
        EvolutionPlan.from_spec(
            args.spec, seed=args.seed, propagation_lag_s=args.lag
        ),
        workload.system,
        workload.query,
    )
    if not plan.active:
        print(
            "no feasible evolution events for this federation",
            file=sys.stderr,
        )
        return 2
    session = _cli_session(workload.system, args)
    controller = EvolutionController(workload.system, plan)
    print(f"query: {workload.query}")
    print(f"plan:  {plan.describe()} (lag {plan.propagation_lag_s}s/site)")

    def show(prefix: str) -> None:
        report = session.execute(workload.query, strategy=args.strategy)
        print(
            f"  {prefix} epoch={report.availability.schema_epoch} "
            f"answer={report.results.summary()} "
            f"digest={answer_digest(report.results)} "
            f"[{report.availability.summary()}]"
        )

    print(f"sites: {', '.join(sorted(workload.system.databases))}")
    show("baseline")
    while not controller.done:
        transition = controller.step()
        print(
            f"t={transition.at:.2f} {transition.label} -> epoch "
            f"{transition.epoch}, sites "
            f"{', '.join(sorted(workload.system.databases))}"
        )
        show("now")
    labels = [e.label for e in plan.ordered_events()]
    lags = ", ".join(
        f"{label}={controller.propagation_lag(label):.3f}s"
        for label in labels
    )
    print(f"propagation: {lags}")
    return 0


def _cmd_recertify(args: argparse.Namespace) -> int:
    """Degrade a query under a fault plan, then repair it in place."""
    session = _cli_session(build_school_federation(), args)
    if not session.options.faults_active:
        print(
            "error: recertify needs --faults (something must degrade "
            "before it can be repaired)",
            file=sys.stderr,
        )
        return 2
    report = session.execute(args.sql, strategy=args.strategy)
    print(f"degraded: {report.summary()}")
    conditional = report.conditions_summary()
    if conditional:
        print(f"          {conditional}")
    for row in report.results.maybe:
        if row.conditions:
            atoms = " AND ".join(str(c) for c in row.conditions)
            print(f"  {row.goid}: {atoms}")
    from repro.conditions import RepairError

    try:
        repaired = session.recertify(report)
    except RepairError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"repaired: {repaired.summary()}")
    if repaired.repair_summary is not None:
        print(f"          {repaired.repair_summary.describe()}")
    residual = [row for row in repaired.results.maybe if row.conditions]
    for row in residual:
        atoms = " AND ".join(str(c) for c in row.conditions)
        print(f"  {row.goid}: {atoms}")
    return 0


def _cmd_tables(_args: argparse.Namespace) -> int:
    print("Table 1 — system parameters")
    print(format_table(["parameter", "description", "setting"], table1_rows()))
    print("\nTable 2 — database and query parameters")
    print(format_table(
        ["parameter", "description", "default setting"], table2_rows()
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Koh & Chen (ICDCS 1996) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run Q1 on the school federation")

    query = sub.add_parser("query", help="run SQL/X on the school federation")
    query.add_argument("sql", help="SQL/X query text")
    query.add_argument(
        "--strategy", default="BL", choices=QUERY_STRATEGIES
    )
    query.add_argument(
        "--trace", default="", help="write a Chrome-trace JSON here"
    )
    query.add_argument(
        "--jsonl", default="", help="write a JSONL event log here"
    )
    _add_fault_args(query)
    _add_batch_arg(query)
    _add_columnar_arg(query)
    _add_planner_arg(query)
    _add_conditions_arg(query)

    explain = sub.add_parser(
        "explain", help="run a query once and print its execution report"
    )
    explain.add_argument("sql", nargs="?", default=Q1_TEXT,
                         help="SQL/X query text (default: the paper's Q1)")
    explain.add_argument(
        "--strategy", default="PL", choices=QUERY_STRATEGIES
    )
    explain.add_argument("--width", type=int, default=48)
    explain.add_argument(
        "--trace", default="", help="also write a Chrome-trace JSON here"
    )
    _add_fault_args(explain)
    _add_batch_arg(explain)
    _add_columnar_arg(explain)
    _add_planner_arg(explain)
    _add_conditions_arg(explain)

    sub.add_parser("strategies", help="list registered strategies")

    study = sub.add_parser("study", help="regenerate Figures 9-11")
    study.add_argument("--samples", type=int, default=100)
    study.add_argument(
        "--figures", default="", help="comma-separated subset, e.g. 9,11"
    )

    compare = sub.add_parser("compare", help="compare strategies on a "
                                             "synthetic federation")
    compare.add_argument("--seed", type=int, default=2026)
    compare.add_argument("--scale", type=float, default=0.05)
    compare.add_argument(
        "--trace-dir", default="",
        help="write each strategy's Chrome-trace JSON into this directory",
    )
    _add_fault_args(compare)
    _add_batch_arg(compare)
    _add_columnar_arg(compare)
    _add_planner_arg(compare)
    _add_conditions_arg(compare)

    sub.add_parser("tables", help="print Tables 1 and 2")

    traffic = sub.add_parser(
        "traffic",
        help="drive a deterministic concurrent workload against a "
             "synthetic federation",
    )
    traffic.add_argument("--workers", type=int, default=8)
    traffic.add_argument(
        "--queries", type=int, default=50, help="queries per worker"
    )
    traffic.add_argument("--seed", type=int, default=1996)
    traffic.add_argument("--scale", type=float, default=0.03)
    traffic.add_argument(
        "--strategy", default="BL", choices=QUERY_STRATEGIES
    )
    traffic.add_argument(
        "--max-in-flight", type=int, default=8, dest="max_in_flight",
        help="admission gate capacity (concurrent executions)",
    )
    traffic.add_argument(
        "--queue-depth", type=int, default=32, dest="queue_depth",
        help="waiting submissions beyond which new ones are shed",
    )
    traffic.add_argument(
        "--verify", action=argparse.BooleanOptionalAction, default=True,
        help="re-execute each distinct query serially and require "
             "byte-identical answers (--no-verify to skip)",
    )
    traffic.add_argument(
        "--json", action="store_true",
        help="print the full report as deterministic JSON",
    )
    traffic.add_argument(
        "--evolve", default="",
        help="evolution plan spec run on the traffic clock, e.g. "
             "'leave@5,join@40,rename@80' (bare kinds auto-resolve to "
             "query-safe targets; see docs/EVOLUTION.md)",
    )
    traffic.add_argument(
        "--evolve-lag", type=float, default=0.05, dest="evolve_lag",
        help="per-site propagation lag in simulated seconds (a window "
             "over N sites stays open N*lag)",
    )
    _add_fault_args(traffic)
    _add_batch_arg(traffic)
    _add_columnar_arg(traffic)
    _add_planner_arg(traffic)
    _add_conditions_arg(traffic)

    evolve = sub.add_parser(
        "evolve",
        help="step an evolution plan through a synthetic federation, "
             "re-querying at every epoch",
    )
    evolve.add_argument("--seed", type=int, default=1996)
    evolve.add_argument("--scale", type=float, default=0.03)
    evolve.add_argument(
        "--spec", default="leave@1,join@2,rename@3,add@4,drop@5",
        help="evolution plan spec (KIND[:TARGET]@TIME, comma-joined; "
             "bare kinds auto-resolve to query-safe targets)",
    )
    evolve.add_argument(
        "--lag", type=float, default=0.05,
        help="per-site propagation lag in simulated seconds",
    )
    evolve.add_argument(
        "--strategy", default="BL", choices=QUERY_STRATEGIES
    )
    _add_fault_args(evolve)
    _add_batch_arg(evolve)
    _add_columnar_arg(evolve)
    _add_planner_arg(evolve)
    _add_conditions_arg(evolve)

    fuzz = sub.add_parser(
        "fuzz", help="differential-test the strategies on random "
                     "federations (or --replay committed cases)"
    )
    fuzz.add_argument("--seed", type=int, default=1996)
    fuzz.add_argument("--cases", type=int, default=25)
    fuzz.add_argument(
        "--replay", nargs="+", default=[], metavar="PATH",
        help="re-check committed case files (or directories of them) "
             "instead of fuzzing",
    )
    fuzz.add_argument(
        "--out", default="",
        help="directory for shrunk JSON case files on violations",
    )
    fuzz.add_argument(
        "--recertify", action="store_true",
        help="also check the repair invariants: every degraded fault "
             "execution must repair to the fault-free baseline via "
             "engine.recertify on the healed federation",
    )
    _add_columnar_arg(fuzz)
    _add_planner_arg(fuzz)

    recert = sub.add_parser(
        "recertify",
        help="run a query degraded under a fault plan, then repair the "
             "answer incrementally against the healed federation",
    )
    recert.add_argument("sql", nargs="?", default=Q1_TEXT,
                        help="SQL/X query text (default: the paper's Q1)")
    recert.add_argument(
        "--strategy", default="BL", choices=QUERY_STRATEGIES
    )
    _add_fault_args(recert)
    _add_batch_arg(recert)
    _add_columnar_arg(recert)
    _add_planner_arg(recert)
    _add_conditions_arg(recert)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "query": _cmd_query,
        "explain": _cmd_explain,
        "strategies": _cmd_strategies,
        "study": _cmd_study,
        "compare": _cmd_compare,
        "tables": _cmd_tables,
        "fuzz": _cmd_fuzz,
        "traffic": _cmd_traffic,
        "evolve": _cmd_evolve,
        "recertify": _cmd_recertify,
    }
    try:
        return handlers[args.command](args)
    except (EvolutionError, FaultPlanError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
