"""Trace exporters: Chrome-trace JSON, flat JSONL, and the text Gantt.

* :func:`chrome_trace_dict` / :func:`chrome_trace_json` — the Trace
  Event Format consumed by ``chrome://tracing`` and Perfetto.  Every
  site becomes a *process* (pid) and every device at the site a
  *thread* (tid), so the UI groups the schedule the way the paper's
  figures do: one lane per resource.  Spans are complete events
  (``"ph": "X"``) with microsecond timestamps; engine events are
  global instants (``"ph": "i"``).
* :func:`jsonl_log` — one self-describing JSON record per line
  (``meta`` / ``span`` / ``event``), greppable and trivially parsed
  back by :func:`repro.obs.spans.trace_from_jsonl`.
* :func:`text_gantt` — the text timeline, rewritten on top of spans
  (one row per span, a ``#`` bar on the response window).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.spans import Trace

#: Simulated seconds -> Chrome trace microseconds.
_US = 1_000_000.0


def _pid_tid_tables(trace: "Trace") -> Dict[str, object]:
    """Stable pid per site and tid per resource (1-based, sorted)."""
    sites = sorted({span.site for span in trace.spans})
    pids = {site: index + 1 for index, site in enumerate(sites)}
    resources = sorted({span.resource for span in trace.spans})
    tids = {resource: index + 1 for index, resource in enumerate(resources)}
    return {"pids": pids, "tids": tids}


def chrome_trace_dict(trace: "Trace") -> Dict[str, object]:
    """Build the Chrome-trace dict for one execution trace."""
    tables = _pid_tid_tables(trace)
    pids: Dict[str, int] = tables["pids"]
    tids: Dict[str, int] = tables["tids"]
    events: List[Dict[str, object]] = []

    for site, pid in pids.items():
        events.append({
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"site {site}"},
        })
    # Name every (pid, tid) lane actually used by a span — network
    # transfers run on the shared channel under their source site's pid.
    named = set()
    for span in trace.spans:
        key = (pids[span.site], tids[span.resource])
        if key in named:
            continue
        named.add(key)
        events.append({
            "ph": "M",
            "name": "thread_name",
            "pid": key[0],
            "tid": key[1],
            "args": {"name": span.resource},
        })

    for span in sorted(trace.spans, key=lambda s: (s.start, s.index)):
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.phase,
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "pid": pids[span.site],
            "tid": tids[span.resource],
            "args": {
                "phase": span.phase,
                "site": span.site,
                "resource": span.resource,
                "nbytes": span.nbytes,
                "queue_delay_us": span.queue_delay * _US,
                "deps": list(span.deps),
            },
        })
    for event in trace.events:
        events.append({
            "ph": "i",
            "s": "g",  # global-scope instant
            "name": event.name,
            "cat": "engine",
            "ts": event.ts * _US,
            "pid": 0,
            "tid": 0,
            "args": event.attr_dict(),
        })
    # Injected outage windows render as background slices on the down
    # site's pid (tid 0 sorts above the device lanes), clamped to the
    # schedule horizon so an open-ended outage stays viewable.
    horizon = trace.response_time
    for site, start, end in trace.fault_windows:
        shown_end = min(end, max(horizon, start))
        events.append({
            "ph": "X",
            "name": f"OUTAGE {site}",
            "cat": "fault",
            "ts": start * _US,
            "dur": max(0.0, shown_end - start) * _US,
            "pid": pids.get(site, 0),
            "tid": 0,
            "cname": "terrible",
            "args": {"site": site, "start": start, "end": end},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "strategy": trace.strategy,
            "query": trace.query_text,
        },
    }


def chrome_trace_json(trace: "Trace", indent: Optional[int] = None) -> str:
    return json.dumps(chrome_trace_dict(trace), indent=indent)


def jsonl_log(trace: "Trace") -> str:
    """One JSON record per line: a ``meta`` header, then spans, then
    events — ordered by simulated start time."""
    lines = [json.dumps({
        "record": "meta",
        "strategy": trace.strategy,
        "query_text": trace.query_text,
        "spans": len(trace.spans),
        "events": len(trace.events),
        "response_time": trace.response_time,
    })]
    for span in sorted(trace.spans, key=lambda s: (s.start, s.index)):
        record = {"record": "span"}
        record.update(span.to_dict())
        lines.append(json.dumps(record))
    for event in trace.events:
        record = {"record": "event"}
        record.update(event.to_dict())
        lines.append(json.dumps(record))
    for site, start, end in trace.fault_windows:
        lines.append(json.dumps({
            "record": "fault_window", "site": site,
            "start": start, "end": end,
        }))
    return "\n".join(lines) + "\n"


def text_gantt(
    trace: "Trace", width: int = 48, min_duration: float = 0.0
) -> str:
    """Render the trace as a text timeline (one row per span)."""
    spans = [s for s in trace.spans
             if s.duration >= min_duration or s.duration == 0]
    if not spans:
        return "(empty schedule)"
    horizon = max(s.finish for s in spans) or 1.0
    label_width = min(36, max(len(s.name) for s in spans))
    resource_width = max(len(s.resource) for s in spans)
    lines = []
    for span in spans:
        begin = int(span.start / horizon * width)
        length = max(1, int(round(span.duration / horizon * width)))
        length = min(length, width - begin)
        bar = " " * begin + "#" * length
        lines.append(
            f"{span.start * 1000:9.3f}ms |{bar.ljust(width)}| "
            f"{span.resource.ljust(resource_width)}  "
            f"{span.name[:label_width]}"
        )
    for event in trace.events:
        attrs = ", ".join(f"{k}={v}" for k, v in event.attrs)
        lines.append(f"   (event) {event.name}" + (f" [{attrs}]" if attrs else ""))
    for site, start, end in trace.fault_windows:
        begin = int(min(start, horizon) / horizon * width)
        shown = min(end, horizon)
        length = max(1, int(round((shown - min(start, horizon)) / horizon * width)))
        length = min(length, width - begin)
        bar = " " * begin + "x" * length
        tail = "+" if end > horizon else ""
        lines.append(
            f"{start * 1000:9.3f}ms |{bar.ljust(width)}| "
            f"OUTAGE {site} ({start:.3f}s..{end:.3f}s{tail})"
        )
    return "\n".join(lines)
