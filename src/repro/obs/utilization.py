"""Per-site resource-utilization profiles computed from the schedule.

For every simulated resource (``DB1:cpu``, ``DB2:disk``, the shared
``net`` channel) the profile reports busy time, utilization over the
response window, and accumulated FIFO queueing delay; sites aggregate
their devices.  The report also extracts the schedule's **critical
path** — the chain of spans whose durations sum to the response time —
which is what actually limits a strategy's latency (e.g. CA's is
dominated by the serialized transfers; PL's by whichever of the check
pipeline and the local evaluation finishes last).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.spans import Span

#: Tolerance for float comparisons on simulated timestamps.
_EPS = 1e-9


@dataclass(frozen=True)
class ResourceProfile:
    """Aggregate activity of one simulated resource."""

    resource: str
    site: str
    busy: float = 0.0
    queue_delay: float = 0.0
    spans: int = 0
    nbytes: int = 0

    def utilization(self, window: float) -> float:
        """Fraction of *window* this resource spent busy."""
        return self.busy / window if window > 0 else 0.0


@dataclass(frozen=True)
class SiteProfile:
    """Aggregate activity of one site across its devices."""

    site: str
    busy: float = 0.0
    queue_delay: float = 0.0
    spans: int = 0
    resources: Tuple[str, ...] = ()

    def utilization(self, window: float) -> float:
        """Average device utilization at this site over *window*."""
        if window <= 0 or not self.resources:
            return 0.0
        return self.busy / (window * len(self.resources))


@dataclass
class UtilizationReport:
    """Per-site and per-resource utilization of one execution."""

    #: The response window: completion time of the whole schedule.
    window: float = 0.0
    resources: Dict[str, ResourceProfile] = field(default_factory=dict)
    sites: Dict[str, SiteProfile] = field(default_factory=dict)
    #: The chain of spans bounding the response time, in schedule order.
    critical_path: Tuple[Span, ...] = ()

    @property
    def critical_path_time(self) -> float:
        return sum(s.duration for s in self.critical_path)

    @property
    def total_busy(self) -> float:
        return sum(p.busy for p in self.resources.values())

    @property
    def total_queue_delay(self) -> float:
        return sum(p.queue_delay for p in self.resources.values())

    def table(self) -> str:
        """The profiles as a short text table (for explain/benches)."""
        lines = ["resource          busy ms   util%   queued ms   spans"]
        for name in sorted(self.resources):
            prof = self.resources[name]
            lines.append(
                f"{name:<16} {prof.busy * 1000:9.3f}  "
                f"{prof.utilization(self.window) * 100:5.1f}  "
                f"{prof.queue_delay * 1000:10.3f}  {prof.spans:6d}"
            )
        lines.append(
            f"critical path: {len(self.critical_path)} spans, "
            f"{self.critical_path_time * 1000:.3f} ms "
            f"of {self.window * 1000:.3f} ms window"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "resources": {
                name: {
                    "site": prof.site,
                    "busy": prof.busy,
                    "queue_delay": prof.queue_delay,
                    "spans": prof.spans,
                    "nbytes": prof.nbytes,
                }
                for name, prof in self.resources.items()
            },
            "critical_path": [s.index for s in self.critical_path],
        }


def compute_utilization(
    spans: Sequence[Span], window: Optional[float] = None
) -> UtilizationReport:
    """Profile *spans* (one executed schedule) into a report.

    Every resource is a capacity-1 FIFO server, so a resource's busy
    time is exactly the sum of its span durations and can never exceed
    the response window.
    """
    if window is None:
        window = max((s.finish for s in spans), default=0.0)
    by_resource: Dict[str, List[Span]] = {}
    for span in spans:
        # Resource-less spans are pure waiting (fault timeouts and
        # backoffs): they occupy no device, so label them as a per-site
        # wait lane instead of leaving a blank utilization row.
        name = span.resource or f"{span.site}:fault-wait"
        by_resource.setdefault(name, []).append(span)

    resources: Dict[str, ResourceProfile] = {}
    site_busy: Dict[str, float] = {}
    site_delay: Dict[str, float] = {}
    site_spans: Dict[str, int] = {}
    site_resources: Dict[str, List[str]] = {}
    for name, members in sorted(by_resource.items()):
        site = name.split(":", 1)[0] if ":" in name else "network"
        prof = ResourceProfile(
            resource=name,
            site=site,
            busy=sum(s.duration for s in members),
            queue_delay=sum(s.queue_delay for s in members),
            spans=len(members),
            nbytes=sum(s.nbytes for s in members),
        )
        resources[name] = prof
        if name.endswith(":fault-wait"):
            # Waiting keeps no device busy; show the lane but leave the
            # site's device-busy aggregate untouched.
            continue
        site_busy[site] = site_busy.get(site, 0.0) + prof.busy
        site_delay[site] = site_delay.get(site, 0.0) + prof.queue_delay
        site_spans[site] = site_spans.get(site, 0) + prof.spans
        site_resources.setdefault(site, []).append(name)

    sites = {
        site: SiteProfile(
            site=site,
            busy=site_busy[site],
            queue_delay=site_delay[site],
            spans=site_spans[site],
            resources=tuple(site_resources[site]),
        )
        for site in site_busy
    }
    return UtilizationReport(
        window=window,
        resources=resources,
        sites=sites,
        critical_path=critical_path(spans),
    )


def critical_path(spans: Sequence[Span]) -> Tuple[Span, ...]:
    """The chain of spans that bounds the schedule's completion time.

    Walks backwards from the last-finishing span.  At each step the
    predecessor is whichever blocked the span's start the longest: a
    dependency (the span could not be ready earlier) or, when the span
    queued after being ready, the span that occupied its resource until
    the moment it started.  The walk follows actual timestamps, so
    resource contention — not just declared dependencies — shows up on
    the path, which is exactly the paper's "transfer time gets longer
    when more component databases transfer simultaneously" effect.
    """
    if not spans:
        return ()
    by_index: Mapping[int, Span] = {s.index: s for s in spans}
    path: List[Span] = []
    current: Optional[Span] = max(spans, key=lambda s: (s.finish, s.duration))
    seen = set()
    while current is not None and current.index not in seen:
        seen.add(current.index)
        path.append(current)
        blocker: Optional[Span] = None
        if current.queue_delay > _EPS:
            # Ready but queued: blocked by the span holding the resource.
            blocker = max(
                (
                    s
                    for s in spans
                    if s.resource == current.resource
                    and s.index != current.index
                    and s.finish <= current.start + _EPS
                    and s.finish > current.ready + _EPS
                ),
                key=lambda s: s.finish,
                default=None,
            )
        if blocker is None:
            # Blocked by the latest-finishing dependency.
            blocker = max(
                (by_index[d] for d in current.deps if d in by_index),
                key=lambda s: s.finish,
                default=None,
            )
            if blocker is not None and blocker.finish <= _EPS and blocker.duration <= _EPS:
                blocker = None  # zero-cost barrier at time zero: stop.
        current = blocker
    path.reverse()
    return tuple(path)
