"""The metrics registry: counters, gauges and timing histograms.

Subsumes the ad-hoc :class:`~repro.sim.metrics.WorkCounters`: every
strategy execution publishes its logical work, its simulated timings and
its span-duration distributions into one :class:`MetricsRegistry`, which
benchmarks and exporters consume uniformly (``snapshot()`` gives a flat
JSON-friendly dict).

Instruments are created on first use and are cheap plain-Python
objects — there is no background collection thread and no sampling; the
simulated federation is fully deterministic, so every observation is
exact.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

Number = Union[int, float]


@dataclass
class Counter:
    """A monotonically increasing count (events, bytes, comparisons)."""

    name: str
    help: str = ""
    value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (a timing, a ratio, a queue depth)."""

    name: str
    help: str = ""
    value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """A distribution of observations (span durations, queue delays).

    Keeps every observation (executions are small and deterministic), so
    percentiles are exact rather than bucketed estimates.
    """

    name: str
    help: str = ""
    _values: List[float] = field(default_factory=list)

    def observe(self, value: Number) -> None:
        bisect.insort(self._values, float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def minimum(self) -> float:
        return self._values[0] if self._values else 0.0

    @property
    def maximum(self) -> float:
        return self._values[-1] if self._values else 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Exact p-th percentile (nearest-rank), p in [0, 100]."""
        if not self._values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        rank = max(0, min(len(self._values) - 1,
                          round(p / 100.0 * (len(self._values) - 1))))
        return self._values[rank]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # --- instrument access (create on first use) --------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            self._check_free(name)
            inst = self._counters[name] = Counter(name=name, help=help)
        return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            self._check_free(name)
            inst = self._gauges[name] = Gauge(name=name, help=help)
        return inst

    def histogram(self, name: str, help: str = "") -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            self._check_free(name)
            inst = self._histograms[name] = Histogram(name=name, help=help)
        return inst

    def _check_free(self, name: str) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if name in table:
                raise ValueError(
                    f"metric {name!r} already registered with another type"
                )

    # --- inspection -------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        ))

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        return (
            self._counters.get(name)
            or self._gauges.get(name)
            or self._histograms.get(name)
        )

    def value(self, name: str) -> float:
        """The scalar value of a counter or gauge (KeyError if absent)."""
        if name in self._counters:
            return float(self._counters[name].value)
        if name in self._gauges:
            return self._gauges[name].value
        raise KeyError(name)

    def snapshot(self) -> Dict[str, object]:
        """Flat JSON-friendly dict: scalars plus histogram summaries."""
        out: Dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name] = histogram.summary()
        return dict(sorted(out.items()))

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` (histograms become
        count-preserving approximations: the summary scalars re-observed).
        """
        registry = cls()
        for name, value in snapshot.items():
            if isinstance(value, Mapping):
                histogram = registry.histogram(name)
                # Re-observe min/mean/max so order statistics stay sane.
                for key in ("min", "mean", "max"):
                    if value.get("count", 0):
                        histogram.observe(float(value[key]))
            elif isinstance(value, float):
                registry.gauge(name).set(value)
            else:
                registry.counter(name).inc(value)
        return registry


def registry_from_metrics(metrics: object) -> MetricsRegistry:
    """Publish one :class:`~repro.sim.metrics.ExecutionMetrics` into a
    fresh registry.

    Layout (all names stable, consumed by benches and exporters):

    * ``work.<field>`` — counters from :class:`WorkCounters`;
    * ``cache.hit`` / ``cache.miss`` — counters of mapping-index and
      decomposition cache lookups (``cache.hit_rate`` as a gauge);
    * ``answers.certain`` / ``answers.maybe`` — counters;
    * ``time.total`` / ``time.response`` — gauges (simulated seconds);
    * ``time.phase.<P|O|I|scan|transfer>`` — gauges;
    * ``site.busy.<site>`` — gauges;
    * ``span.duration.<phase>`` — histograms over span durations;
    * ``span.queue_delay`` — histogram over FIFO queueing delays.
    """
    registry = MetricsRegistry()
    work = metrics.work
    for fname in (
        "objects_scanned",
        "objects_shipped",
        "assistants_looked_up",
        "assistants_checked",
        "signature_comparisons",
        "comparisons",
        "bytes_disk",
        "bytes_network",
        "messages",
        "retries",
        "timeouts",
        "messages_lost",
        "checks_failed_over",
        "hedges",
    ):
        registry.counter(f"work.{fname}").inc(getattr(work, fname))
    registry.counter(
        "cache.hit", help="mapping-index / decomposition cache hits"
    ).inc(work.cache_hits)
    registry.counter(
        "cache.miss", help="mapping-index / decomposition cache misses"
    ).inc(work.cache_misses)
    registry.gauge(
        "cache.hit_rate", help="hits over total cache lookups"
    ).set(work.cache_hit_rate)
    registry.counter("answers.certain").inc(metrics.certain_results)
    registry.counter("answers.maybe").inc(metrics.maybe_results)
    registry.gauge("time.total").set(metrics.total_time)
    registry.gauge("time.response").set(metrics.response_time)
    for phase, seconds in metrics.phase_time.items():
        registry.gauge(f"time.phase.{phase}").set(seconds)
    for site, seconds in metrics.site_busy.items():
        registry.gauge(f"site.busy.{site}").set(seconds)
    queue_delay = registry.histogram(
        "span.queue_delay", help="FIFO wait before each span ran"
    )
    for span in metrics.spans:
        registry.histogram(f"span.duration.{span.phase}").observe(span.duration)
        queue_delay.observe(span.queue_delay)
    registry.counter("spans.count").inc(len(metrics.spans))
    return registry
