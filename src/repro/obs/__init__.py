"""Federation-wide observability: spans, metrics, utilization, exporters.

The strategies describe their work as activity graphs scheduled on the
discrete-event simulator; this package turns the executed schedule into
first-class observability artifacts:

* :mod:`repro.obs.spans` — structured **spans** (one per scheduled
  activity or transfer, tagged with phase, site and resource) plus
  instantaneous **events**, bundled into a :class:`~repro.obs.spans.Trace`
  handle;
* :mod:`repro.obs.registry` — a **metrics registry** of counters, gauges
  and timing histograms, subsuming the ad-hoc ``WorkCounters``;
* :mod:`repro.obs.utilization` — per-site/per-resource **utilization
  profiles** (busy time, queueing delay, critical path) computed from the
  schedule;
* :mod:`repro.obs.exporters` — a Chrome-trace (``chrome://tracing`` /
  Perfetto) JSON emitter, a flat JSONL event log, and the text Gantt.

Everything here is pure post-processing over simulated timestamps: no
wall clocks, no global state, no extra dependencies.
"""

from repro.obs.exporters import (
    chrome_trace_dict,
    chrome_trace_json,
    jsonl_log,
    text_gantt,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_from_metrics,
)
from repro.obs.spans import Span, Trace, TraceEvent, spans_from_nodes, trace_from_jsonl
from repro.obs.utilization import (
    ResourceProfile,
    SiteProfile,
    UtilizationReport,
    compute_utilization,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ResourceProfile",
    "SiteProfile",
    "Span",
    "Trace",
    "TraceEvent",
    "UtilizationReport",
    "chrome_trace_dict",
    "chrome_trace_json",
    "compute_utilization",
    "jsonl_log",
    "registry_from_metrics",
    "spans_from_nodes",
    "text_gantt",
    "trace_from_jsonl",
]
