"""Structured spans: the unit of federation observability.

A :class:`Span` is one completed unit of work on the simulated
federation — a disk scan, a CPU burst, or a network transfer — with its
phase tag (P/O/I/scan/transfer), the site that performed it, the
resource it occupied, and its measured ``[start, finish]`` window on the
simulated clock.  Spans also carry their *queueing delay* (how long the
work sat ready but waiting for its FIFO resource) and the indices of the
spans they depended on, so exporters and utilization profiles can
reconstruct the schedule's structure.

A :class:`Trace` bundles the spans of one strategy execution together
with instantaneous :class:`TraceEvent` records (e.g. an implicit
signature-catalog build) and offers the exporters as methods:
``to_chrome_json()``, ``to_jsonl()``, ``gantt()``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Phase tag used for engine-level (non-simulated) setup events.
PHASE_SETUP = "setup"


@dataclass(frozen=True)
class Span:
    """One completed unit of work in a strategy's simulated schedule."""

    index: int
    name: str
    phase: str
    site: str
    resource: str
    start: float
    finish: float
    nbytes: int = 0
    #: Simulated seconds the work waited for its resource after its
    #: dependencies completed (FIFO queueing at a busy device).
    queue_delay: float = 0.0
    #: Indices (within the same trace) of the spans this one waited on.
    deps: Tuple[int, ...] = ()

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def ready(self) -> float:
        """When the span's dependencies were done and it could queue."""
        return self.start - self.queue_delay

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "name": self.name,
            "phase": self.phase,
            "site": self.site,
            "resource": self.resource,
            "start": self.start,
            "finish": self.finish,
            "nbytes": self.nbytes,
            "queue_delay": self.queue_delay,
            "deps": list(self.deps),
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "Span":
        return cls(
            index=int(raw["index"]),
            name=str(raw["name"]),
            phase=str(raw["phase"]),
            site=str(raw["site"]),
            resource=str(raw["resource"]),
            start=float(raw["start"]),
            finish=float(raw["finish"]),
            nbytes=int(raw.get("nbytes", 0)),
            queue_delay=float(raw.get("queue_delay", 0.0)),
            deps=tuple(int(d) for d in raw.get("deps", ())),
        )


@dataclass(frozen=True)
class TraceEvent:
    """An instantaneous occurrence worth recording (not simulated work).

    Used for engine bookkeeping that happens outside the simulated
    clock — e.g. the implicit ``build_signatures()`` a signature
    strategy triggers, or the adaptive optimizer's prediction.
    """

    name: str
    attrs: Tuple[Tuple[str, str], ...] = ()
    ts: float = 0.0

    @classmethod
    def of(cls, name: str, ts: float = 0.0, **attrs: object) -> "TraceEvent":
        return cls(
            name=name,
            attrs=tuple(sorted((k, str(v)) for k, v in attrs.items())),
            ts=ts,
        )

    def attr_dict(self) -> Dict[str, str]:
        return dict(self.attrs)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "ts": self.ts, "attrs": self.attr_dict()}

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "TraceEvent":
        attrs = raw.get("attrs", {})
        return cls(
            name=str(raw["name"]),
            attrs=tuple(sorted((str(k), str(v)) for k, v in dict(attrs).items())),
            ts=float(raw.get("ts", 0.0)),
        )


def spans_from_nodes(nodes: Sequence[object]) -> Tuple[Span, ...]:
    """Flatten executed taskgraph nodes into spans, ordered by start.

    Accepts any sequence of objects with the :class:`repro.sim.taskgraph
    .Node` shape (``index``/``label``/``phase``/``site``/
    ``resource_name``/``nbytes``/``deps``/``start``/``finish`` and,
    when the kernel recorded it, ``ready``).  The queueing delay is
    ``start - ready`` when the kernel stamped the ready time, otherwise
    ``start - max(dep finishes)``.
    """
    spans: List[Span] = []
    for node in nodes:
        if node.finish is None or node.start is None:
            continue
        ready = getattr(node, "ready", None)
        if ready is None:
            ready = max((d.finish or 0.0 for d in node.deps), default=0.0)
        spans.append(
            Span(
                index=node.index,
                name=node.label,
                phase=node.phase,
                site=node.site,
                resource=node.resource_name,
                start=node.start,
                finish=node.finish,
                nbytes=node.nbytes,
                queue_delay=max(0.0, node.start - ready),
                deps=tuple(d.index for d in node.deps),
            )
        )
    spans.sort(key=lambda s: (s.start, s.finish, s.resource, s.index))
    return tuple(spans)


@dataclass
class Trace:
    """The full observable record of one strategy execution."""

    strategy: str
    spans: Tuple[Span, ...] = ()
    events: Tuple[TraceEvent, ...] = ()
    query_text: str = ""
    #: Injected outage windows as (site, start, end) — rendered by the
    #: exporters as background slices behind the site's spans.
    fault_windows: Tuple[Tuple[str, float, float], ...] = ()

    # --- inspection -------------------------------------------------------

    @property
    def response_time(self) -> float:
        """Completion time of the schedule (max span finish)."""
        return max((s.finish for s in self.spans), default=0.0)

    def phase_spans(self, phase: str) -> Tuple[Span, ...]:
        return tuple(s for s in self.spans if s.phase == phase)

    def site_spans(self, site: str) -> Tuple[Span, ...]:
        return tuple(s for s in self.spans if s.site == site)

    def sites(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(s.site for s in self.spans))

    def with_events(self, events: Iterable[TraceEvent]) -> "Trace":
        return replace(self, events=self.events + tuple(events))

    # --- exporters (implemented in repro.obs.exporters) -------------------

    def to_chrome(self) -> Dict[str, object]:
        """The trace as a Chrome-trace (``chrome://tracing``) dict."""
        from repro.obs.exporters import chrome_trace_dict

        return chrome_trace_dict(self)

    def to_chrome_json(self, indent: Optional[int] = None) -> str:
        """The trace as Chrome-trace JSON text (load in Perfetto)."""
        from repro.obs.exporters import chrome_trace_json

        return chrome_trace_json(self, indent=indent)

    def to_jsonl(self) -> str:
        """The trace as a flat JSONL event log (one record per line)."""
        from repro.obs.exporters import jsonl_log

        return jsonl_log(self)

    def gantt(self, width: int = 48) -> str:
        """The trace as the text Gantt timeline."""
        from repro.obs.exporters import text_gantt

        return text_gantt(self, width=width)

    # --- round-trip -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "strategy": self.strategy,
            "query_text": self.query_text,
            "spans": [s.to_dict() for s in self.spans],
            "events": [e.to_dict() for e in self.events],
        }
        if self.fault_windows:
            payload["fault_windows"] = [list(w) for w in self.fault_windows]
        return payload

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "Trace":
        return cls(
            strategy=str(raw.get("strategy", "?")),
            query_text=str(raw.get("query_text", "")),
            spans=tuple(Span.from_dict(s) for s in raw.get("spans", ())),
            events=tuple(TraceEvent.from_dict(e) for e in raw.get("events", ())),
            fault_windows=tuple(
                (str(w[0]), float(w[1]), float(w[2]))
                for w in raw.get("fault_windows", ())
            ),
        )


def trace_from_jsonl(text: str) -> Trace:
    """Rebuild a :class:`Trace` from its :meth:`Trace.to_jsonl` export."""
    strategy = "?"
    query_text = ""
    spans: List[Span] = []
    events: List[TraceEvent] = []
    windows: List[Tuple[str, float, float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("record")
        if kind == "meta":
            strategy = record.get("strategy", strategy)
            query_text = record.get("query_text", query_text)
        elif kind == "span":
            spans.append(Span.from_dict(record))
        elif kind == "event":
            events.append(TraceEvent.from_dict(record))
        elif kind == "fault_window":
            windows.append(
                (str(record["site"]), float(record["start"]),
                 float(record["end"]))
            )
    return Trace(
        strategy=strategy,
        spans=tuple(spans),
        events=tuple(events),
        query_text=query_text,
        fault_windows=tuple(windows),
    )
